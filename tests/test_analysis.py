"""Tests for the cube analytics module."""

import pytest
from hypothesis import given, settings

from repro.core.bitset import popcount
from repro.core.types import Dataset
from repro.cube import (
    CompressedSkylineCube,
    decisive_size_histogram,
    dimension_influence,
    hidden_gems,
    robust_winners,
)
from repro.skyline import compute_skyline

from .conftest import tiny_int_datasets


@pytest.fixture
def example1_cube(example1):
    return CompressedSkylineCube.build(example1)


@pytest.fixture
def running_cube(running_example):
    return CompressedSkylineCube.build(running_example)


class TestHiddenGems:
    def test_object_d_is_the_canonical_gem(self, example1, example1_cube):
        """Example 1: d wins only in the full space XY."""
        gems = hidden_gems(example1_cube, min_criteria=2)
        labels = {example1.labels[obj] for obj, _ in gems}
        assert "d" in labels
        assert "e" not in labels  # e already wins on Y alone

    def test_running_example_has_no_gems(self, running_cube):
        """Every winner of the running example already wins on a single
        criterion through some group (P2 via (P2P4, C), P5 via (P2P5, A),
        etc.), so no object needs >= 2 combined criteria."""
        assert hidden_gems(running_cube, min_criteria=2) == []

    def test_threshold(self, running_cube):
        assert hidden_gems(running_cube, min_criteria=3) == []
        with pytest.raises(ValueError):
            hidden_gems(running_cube, min_criteria=0)

    @settings(max_examples=30, deadline=None)
    @given(tiny_int_datasets(max_objects=8, max_dims=3, max_value=3))
    def test_gem_definition(self, ds: Dataset):
        """A gem of threshold k wins in no subspace smaller than k dims."""
        cube = CompressedSkylineCube.build(ds)
        gem_set = {obj for obj, _ in hidden_gems(cube, min_criteria=2)}
        for obj in range(ds.n_objects):
            wins_small = any(
                obj in compute_skyline(ds, s, algorithm="brute")
                for s in range(1, 1 << ds.n_dims)
                if popcount(s) == 1
            )
            wins_anywhere = bool(cube.groups_of(obj))
            assert (obj in gem_set) == (wins_anywhere and not wins_small)


class TestRobustWinners:
    def test_example1(self, example1, example1_cube):
        winners = {
            example1.labels[obj]: dims for obj, dims in robust_winners(example1_cube)
        }
        assert set(winners) == {"a", "b", "e"}  # (ab, X) and (e, Y)
        assert winners["e"] == [1]

    def test_running_example(self, running_cube):
        winners = dict(robust_winners(running_cube))
        # single-dim decisives: C (P2P4), A (P2P5), D (P2P3P5), B (P3P4P5)
        assert set(winners) == {1, 2, 3, 4}
        assert winners[1] == [0, 2, 3]  # P2 wins on A, C and D alone


class TestHistogramsAndInfluence:
    def test_decisive_size_histogram(self, running_cube):
        # decisive subspaces: AC, CD, BC, AB, C, A, BD, D, B -> sizes
        assert decisive_size_histogram(running_cube) == {1: 4, 2: 5}

    def test_dimension_influence(self, running_example, running_cube):
        influence = dict(dimension_influence(running_cube))
        assert set(influence) == {"A", "B", "C", "D"}
        # every dimension decides at least one group in the running example
        assert all(v >= 1 for v in influence.values())

    def test_constant_dimension_decides_the_all_objects_group(self):
        """A constant column ties *everyone*, so the one group holding all
        objects is decisive on it (exclusivity is vacuous) -- a subtle
        consequence of Definition 2 worth pinning."""
        ds = Dataset.from_rows([[1, 2, 5], [2, 1, 5], [3, 3, 5]])
        cube = CompressedSkylineCube.build(ds)
        everyone = next(g for g in cube.groups if len(g.members) == 3)
        assert everyone.decisive == (0b100,)
        assert dict(dimension_influence(cube))["C"] == 1

    @settings(max_examples=30, deadline=None)
    @given(tiny_int_datasets(max_objects=8, max_dims=3, max_value=3))
    def test_influence_matches_direct_recount(self, ds: Dataset):
        cube = CompressedSkylineCube.build(ds)
        influence = dict(dimension_influence(cube))
        for d in range(ds.n_dims):
            expected = sum(
                1
                for g in cube.groups
                if any(c & (1 << d) for c in g.decisive)
            )
            assert influence[ds.names[d]] == expected
