"""Tests for the Dataset model and SkylineGroup result type."""

import numpy as np
import pytest

from repro.core.types import Dataset, Direction, SkylineGroup, group_sort_key


class TestDirection:
    def test_coerce_strings(self):
        assert Direction.coerce("min") is Direction.MIN
        assert Direction.coerce("MAX") is Direction.MAX

    def test_coerce_identity(self):
        assert Direction.coerce(Direction.MIN) is Direction.MIN

    def test_coerce_invalid(self):
        with pytest.raises(ValueError, match="'min' or 'max'"):
            Direction.coerce("sideways")


class TestDatasetConstruction:
    def test_defaults(self):
        ds = Dataset.from_rows([[1, 2], [3, 4]])
        assert ds.names == ("A", "B")
        assert ds.directions == (Direction.MIN, Direction.MIN)
        assert ds.labels == ("P1", "P2")
        assert ds.n_objects == 2
        assert ds.n_dims == 2
        assert len(ds) == 2
        assert ds.full_space == 0b11

    def test_empty_dataset(self):
        ds = Dataset.from_rows([], names=("A", "B"))
        assert ds.n_objects == 0
        assert ds.n_dims == 2

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError, match="2-d matrix"):
            Dataset(values=np.zeros(3))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            Dataset.from_rows([[1.0, float("nan")]])

    def test_rejects_wrong_name_count(self):
        with pytest.raises(ValueError, match="dimension names"):
            Dataset.from_rows([[1, 2]], names=("A",))

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="unique"):
            Dataset.from_rows([[1, 2]], names=("A", "A"))

    def test_rejects_wrong_label_count(self):
        with pytest.raises(ValueError, match="object labels"):
            Dataset.from_rows([[1, 2]], labels=("a", "b"))

    def test_rejects_duplicate_labels(self):
        with pytest.raises(ValueError, match="unique"):
            Dataset.from_rows([[1, 2], [3, 4]], labels=("a", "a"))

    def test_values_are_read_only(self):
        ds = Dataset.from_rows([[1, 2]])
        with pytest.raises(ValueError):
            ds.values[0, 0] = 9
        with pytest.raises(ValueError):
            ds.minimized[0, 0] = 9


class TestMinimizedView:
    def test_max_columns_negated(self):
        ds = Dataset.from_rows(
            [[1, 10], [2, 20]], directions=("min", "max")
        )
        assert ds.minimized[0, 0] == 1
        assert ds.minimized[0, 1] == -10
        # raw values untouched
        assert ds.values[0, 1] == 10

    def test_dominance_respects_directions(self):
        from repro.skyline import compute_skyline

        # Bigger second column is better: (1, 20) dominates (1, 10).
        ds = Dataset.from_rows(
            [[1, 10], [1, 20]], directions=("min", "max")
        )
        assert compute_skyline(ds) == [1]


class TestProjections:
    def test_projection(self, running_example):
        # P2 on AC
        assert running_example.projection(1, 0b101) == (2.0, 8.0)

    def test_min_projection_with_max_direction(self):
        ds = Dataset.from_rows([[3, 7]], directions=("min", "max"))
        assert ds.projection(0, 0b11) == (3.0, 7.0)
        assert ds.min_projection(0, 0b11) == (3.0, -7.0)


class TestDerivation:
    def test_restrict_dims(self, running_example):
        sub = running_example.restrict_dims(0b1010)  # B and D
        assert sub.names == ("B", "D")
        assert sub.n_dims == 2
        assert sub.values[0].tolist() == [6, 7]
        assert sub.labels == running_example.labels

    def test_restrict_empty_rejected(self, running_example):
        with pytest.raises(ValueError, match="empty subspace"):
            running_example.restrict_dims(0)

    def test_prefix_dims(self, running_example):
        sub = running_example.prefix_dims(2)
        assert sub.names == ("A", "B")

    def test_prefix_bounds(self, running_example):
        with pytest.raises(ValueError):
            running_example.prefix_dims(0)
        with pytest.raises(ValueError):
            running_example.prefix_dims(5)

    def test_take(self, running_example):
        sub = running_example.take([0, 4])
        assert sub.n_objects == 2
        assert sub.labels == ("P1", "P5")
        assert sub.values[1].tolist() == [2, 4, 9, 3]


class TestFormatting:
    def test_format_subspace(self, running_example):
        assert running_example.format_subspace(0b1001) == "AD"

    def test_parse_subspace(self, running_example):
        assert running_example.parse_subspace("AD") == 0b1001

    def test_format_objects(self, running_example):
        assert running_example.format_objects([4, 1]) == "P2P5"

    def test_format_objects_long_labels(self):
        ds = Dataset.from_rows(
            [[1], [2]], labels=("alpha", "beta")
        )
        assert ds.format_objects([0, 1]) == "alpha,beta"


class TestSkylineGroup:
    def test_validation_empty_members(self):
        with pytest.raises(ValueError, match="at least one object"):
            SkylineGroup(frozenset(), 1, (1,), (1.0,))

    def test_validation_empty_subspace(self):
        with pytest.raises(ValueError, match="non-empty"):
            SkylineGroup(frozenset([0]), 0, (1,), ())

    def test_validation_projection_length(self):
        with pytest.raises(ValueError, match="projection length"):
            SkylineGroup(frozenset([0]), 0b11, (1,), (1.0,))

    def test_decisive_sorted_deduped(self):
        g = SkylineGroup(frozenset([0]), 0b11, (2, 1, 2), (1.0, 2.0))
        assert g.decisive == (1, 2)

    def test_key(self):
        g = SkylineGroup(frozenset([3, 1]), 0b1, (1,), (5.0,))
        assert g.key == ((1, 3), 0b1)

    def test_covers_subspace(self):
        # B = {A,B,C}, decisive = {A}
        g = SkylineGroup(frozenset([0]), 0b111, (0b001,), (1.0, 2.0, 3.0))
        assert g.covers_subspace(0b001)
        assert g.covers_subspace(0b011)
        assert g.covers_subspace(0b111)
        assert not g.covers_subspace(0b010)   # does not contain decisive
        assert not g.covers_subspace(0b1001)  # leaves the maximal subspace

    def test_signature(self, running_example):
        g = SkylineGroup(
            frozenset([1, 4]), 0b1001, (0b0001,), (2.0, 3.0)
        )
        assert g.signature(running_example) == "(P2P5, (2,*,*,3), A)"

    def test_signature_fractional_value(self):
        ds = Dataset.from_rows([[1.5, 2.0]])
        g = SkylineGroup(frozenset([0]), 0b11, (0b01,), (1.5, 2.0))
        assert "(1.5,2)" in g.signature(ds)

    def test_group_sort_key_orders_by_size_then_members(self):
        small = SkylineGroup(frozenset([9]), 1, (1,), (0.0,))
        large = SkylineGroup(frozenset([0, 1]), 1, (1,), (0.0,))
        assert group_sort_key(small) < group_sort_key(large)
