"""Tests for the extension features: top-k frequency, duplicate binding,
and the Skyey sort-key-sharing toggle."""

import pytest
from hypothesis import given, settings

from repro.baselines import skyey
from repro.core.stellar import stellar
from repro.core.types import Dataset
from repro.cube import CompressedSkylineCube
from repro.skyline import compute_skyline

from .conftest import tiny_int_datasets


class TestTopFrequent:
    def test_running_example(self, running_example):
        cube = CompressedSkylineCube.build(running_example)
        got = cube.top_frequent(10)
        # brute-force frequencies
        expected = {}
        for obj in range(5):
            count = sum(
                obj in compute_skyline(running_example, s, algorithm="brute")
                for s in range(1, 16)
            )
            if count:
                expected[obj] = count
        assert dict(got) == expected
        # sorted by decreasing frequency
        freqs = [f for _, f in got]
        assert freqs == sorted(freqs, reverse=True)

    def test_k_limits(self, running_example):
        cube = CompressedSkylineCube.build(running_example)
        assert len(cube.top_frequent(1)) == 1
        assert cube.top_frequent(0) == []

    def test_negative_k(self, running_example):
        cube = CompressedSkylineCube.build(running_example)
        with pytest.raises(ValueError):
            cube.top_frequent(-1)

    def test_zero_frequency_objects_omitted(self, running_example):
        cube = CompressedSkylineCube.build(running_example)
        assert 0 not in dict(cube.top_frequent(99))  # P1 wins nowhere

    @settings(max_examples=30, deadline=None)
    @given(tiny_int_datasets(max_objects=8, max_dims=3, max_value=3))
    def test_matches_bruteforce(self, ds: Dataset):
        cube = CompressedSkylineCube.build(ds)
        got = dict(cube.top_frequent(ds.n_objects))
        for obj in range(ds.n_objects):
            count = sum(
                obj in compute_skyline(ds, s, algorithm="brute")
                for s in range(1, 1 << ds.n_dims)
            )
            assert got.get(obj, 0) == count


class TestDuplicateBinding:
    def canonical(self, result):
        return (
            [(g.key, g.decisive, g.projection) for g in result.groups],
            result.seeds,
        )

    def test_identical_output_running_example(self, running_example):
        plain = stellar(running_example)
        bound = stellar(running_example, bind_duplicates=True)
        assert self.canonical(plain) == self.canonical(bound)
        assert bound.stats.n_bound_duplicates == 0

    def test_identical_output_with_duplicates(self):
        ds = Dataset.from_rows(
            [[1, 2], [1, 2], [2, 1], [1, 2], [3, 3], [2, 1]]
        )
        plain = stellar(ds)
        bound = stellar(ds, bind_duplicates=True)
        assert self.canonical(plain) == self.canonical(bound)
        assert bound.stats.n_bound_duplicates == 3
        assert "duplicate_binding" in bound.stats.timings

    def test_seed_group_members_expanded(self):
        ds = Dataset.from_rows([[1, 2], [1, 2], [2, 1]])
        bound = stellar(ds, bind_duplicates=True)
        members = {sg.members for sg in bound.seed_groups}
        assert (0, 1) in members

    @settings(max_examples=60, deadline=None)
    @given(tiny_int_datasets(max_objects=10, max_dims=3, max_value=2))
    def test_binding_never_changes_the_cube(self, ds: Dataset):
        plain = stellar(ds)
        bound = stellar(ds, bind_duplicates=True)
        assert self.canonical(plain) == self.canonical(bound)


class TestSkyeyCandidatePruning:
    def test_same_output_running_example(self, running_example):
        plain = skyey(running_example)
        pruned = skyey(running_example, candidate_pruning=True)
        assert [(g.key, g.decisive) for g in plain.groups] == [
            (g.key, g.decisive) for g in pruned.groups
        ]
        assert plain.skyline_sizes == pruned.skyline_sizes
        assert (
            plain.stats.n_subspace_skyline_objects
            == pruned.stats.n_subspace_skyline_objects
        )

    def test_still_searches_every_subspace(self, running_example):
        """The pruning shrinks each scan but not the 2^d - 1 subspace count
        -- the structural reason the paper's related-work section says
        adopting [15] cannot match Stellar."""
        pruned = skyey(running_example, candidate_pruning=True)
        assert pruned.stats.n_subspaces_searched == 15

    @settings(max_examples=40, deadline=None)
    @given(tiny_int_datasets(max_objects=9, max_dims=4, max_value=3))
    def test_pruning_is_pure_performance(self, ds: Dataset):
        a = skyey(ds)
        b = skyey(ds, candidate_pruning=True)
        assert [(g.key, g.decisive) for g in a.groups] == [
            (g.key, g.decisive) for g in b.groups
        ]
        assert a.skyline_sizes == b.skyline_sizes


class TestSkyeySharingToggle:
    def test_same_output_both_modes(self, running_example):
        shared = skyey(running_example, share_sort_keys=True)
        recomputed = skyey(running_example, share_sort_keys=False)
        assert [(g.key, g.decisive) for g in shared.groups] == [
            (g.key, g.decisive) for g in recomputed.groups
        ]
        assert shared.skyline_sizes == recomputed.skyline_sizes

    @settings(max_examples=30, deadline=None)
    @given(tiny_int_datasets(max_objects=8, max_dims=4, max_value=3))
    def test_toggle_is_pure_performance(self, ds: Dataset):
        a = skyey(ds, share_sort_keys=True)
        b = skyey(ds, share_sort_keys=False)
        assert [(g.key, g.decisive) for g in a.groups] == [
            (g.key, g.decisive) for g in b.groups
        ]
