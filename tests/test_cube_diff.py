"""Tests for the temporal skycube diff (repro.cube.diff).

The diff is validated against a brute-force oracle: per-subspace skyline
membership recomputed independently with :func:`skycube_naive`, so the
compressed-representation algebra (group keys, decisive intervals,
subset enumeration) is checked end to end.  The rows and columnar churn
engines must be bit-identical, the ``/v1/diff`` endpoint must serve and
cache the same answer, and ``repro diff`` must print it.
"""

import json
import random

import pytest

from repro.core.types import Dataset
from repro.cube import CompressedSkylineCube, MaintainedCube
from repro.cube.diff import DIFF_PLAN_COUNTERS, diff_cubes
from repro.serve import CubeService, SnapshotStore
from repro.skycube.naive import skycube_naive


def memberships(dataset):
    """Brute force: label -> set of subspace masks it is a skyline member of."""
    out = {}
    for mask, indices in skycube_naive(dataset).items():
        for i in indices:
            out.setdefault(dataset.labels[i], set()).add(mask)
    return out


@pytest.fixture
def versions(flight_routes):
    """Two cube generations of the routes catalogue."""
    old = CompressedSkylineCube.build(flight_routes)
    mc = MaintainedCube.adopt(CompressedSkylineCube.build(flight_routes))
    mc.insert([100.0, 1.0, 0.0], label="CONCORDE")
    mc.delete("MULTIHOP")
    return old, mc.cube


class TestDiffCorrectness:
    def test_objects_match_brute_force(self, versions):
        old, new = versions
        diff = diff_cubes(old, new)
        by_old = memberships(old.dataset)
        by_new = memberships(new.dataset)
        assert set(diff.entered_objects) == set(by_new) - set(by_old)
        assert set(diff.exited_objects) == set(by_old) - set(by_new)

    def test_fullspace_matches_brute_force(self, versions):
        old, new = versions
        diff = diff_cubes(old, new)
        full = (1 << old.dataset.n_dims) - 1
        old_full = {
            old.dataset.labels[i] for i in skycube_naive(old.dataset)[full]
        }
        new_full = {
            new.dataset.labels[i] for i in skycube_naive(new.dataset)[full]
        }
        assert set(diff.fullspace_entered) == new_full - old_full
        assert set(diff.fullspace_exited) == old_full - new_full

    def test_churn_matches_brute_force(self, versions):
        old, new = versions
        diff = diff_cubes(old, new)
        by_old = memberships(old.dataset)
        by_new = memberships(new.dataset)
        expected = {}
        for label in set(by_old) | set(by_new):
            for mask in by_old.get(label, set()) ^ by_new.get(label, set()):
                expected[mask] = expected.get(mask, 0) + 1
        assert diff.churn == expected
        assert diff.total_churn == sum(expected.values())

    def test_group_sets_match_cube_keys(self, versions):
        old, new = versions

        def keys(cube):
            return {
                (tuple(sorted(cube.dataset.labels[m] for m in g.members)),
                 g.subspace)
                for g in cube.groups
            }

        diff = diff_cubes(old, new)
        entered = {(g.labels, g.subspace) for g in diff.entered_groups}
        exited = {(g.labels, g.subspace) for g in diff.exited_groups}
        assert entered == keys(new) - keys(old)
        assert exited == keys(old) - keys(new)

    def test_engines_bit_identical(self, versions):
        old, new = versions
        rows = diff_cubes(old, new, engine="rows")
        cols = diff_cubes(old, new, engine="columnar")
        assert rows.plan.engine == "rows"
        assert cols.plan.engine == "columnar"
        assert rows.churn == cols.churn
        assert rows.entered_groups == cols.entered_groups
        assert rows.exited_groups == cols.exited_groups
        assert rows.changed_groups == cols.changed_groups
        assert rows.entered_objects == cols.entered_objects
        assert rows.fullspace_exited == cols.fullspace_exited

    def test_identical_cubes_diff_empty(self, versions):
        old, _ = versions
        diff = diff_cubes(old, old)
        assert diff.entered_groups == ()
        assert diff.exited_groups == ()
        assert diff.changed_groups == ()
        assert diff.churn == {}
        assert diff.total_churn == 0

    def test_schema_mismatch_rejected(self, versions):
        old, _ = versions
        other = CompressedSkylineCube.build(
            Dataset.from_rows([[1, 2, 3]], names=("a", "b", "c"))
        )
        with pytest.raises(ValueError, match="different schemas"):
            diff_cubes(old, other)

    def test_churn_skipped_beyond_max_dims(self, versions):
        old, new = versions
        diff = diff_cubes(old, new, max_churn_dims=2)
        assert diff.churn_skipped
        assert diff.churn == {}
        assert "churn_skipped" in diff.plan.detail
        assert "skipped" in diff.render()
        # Group algebra still runs even when churn is skipped.
        assert diff.entered_objects == ("CONCORDE",)

    def test_random_streams_match_brute_force(self):
        rng = random.Random(20260808)
        for _ in range(5):
            rows = [
                [rng.randint(0, 4) for _ in range(3)]
                for _ in range(rng.randint(3, 7))
            ]
            base = Dataset.from_rows(rows)
            old = CompressedSkylineCube.build(base)
            mc = MaintainedCube.adopt(CompressedSkylineCube.build(base))
            for _ in range(3):
                if rng.random() < 0.6 or mc.dataset.n_objects <= 1:
                    mc.insert([rng.randint(0, 4) for _ in range(3)])
                else:
                    mc.delete(rng.choice(mc.dataset.labels))
            diff = diff_cubes(old, mc.cube)
            by_old = memberships(old.dataset)
            by_new = memberships(mc.dataset)
            expected = {}
            for label in set(by_old) | set(by_new):
                masks = by_old.get(label, set()) ^ by_new.get(label, set())
                for mask in masks:
                    expected[mask] = expected.get(mask, 0) + 1
            assert diff.churn == expected
            assert set(diff.entered_objects) == set(by_new) - set(by_old)
            assert set(diff.exited_objects) == set(by_old) - set(by_new)


class TestDiffPlan:
    def test_counters_complete_and_mirrored(self, versions):
        from repro.obs import registry

        old, new = versions
        before = {
            name: registry().counter(f"cube.diff.{name}").value
            for name in DIFF_PLAN_COUNTERS
        }
        diff = diff_cubes(old, new)
        assert set(diff.plan.counters) == set(DIFF_PLAN_COUNTERS)
        assert diff.plan.counters["groups_old"] == len(old.groups)
        assert diff.plan.counters["groups_new"] == len(new.groups)
        for name in DIFF_PLAN_COUNTERS:
            delta = registry().counter(f"cube.diff.{name}").value - before[name]
            assert delta == diff.plan.counters[name], name

    def test_render_and_to_dict(self, versions):
        old, new = versions
        diff = diff_cubes(old, new)
        text = diff.plan.render()
        assert text.startswith("EXPLAIN cube.diff")
        assert "subspaces scanned" in text
        doc = diff.to_dict(top=3)
        assert doc["dimensions"] == ["price", "traveltime", "stops"]
        assert len(doc["churn"]["top"]) <= 3
        assert doc["plan"]["engine"] in ("rows", "columnar")
        json.dumps(doc)  # must be JSON-serialisable as-is

    def test_subspace_names_formatted(self, versions):
        old, new = versions
        doc = diff_cubes(old, new).to_dict()
        for row in doc["churn"]["top"]:
            for dim in row["subspace"].split(","):
                assert dim in ("price", "traveltime", "stops")


class TestDiffService:
    @pytest.fixture
    def served(self, tmp_path, versions):
        old, new = versions
        store = SnapshotStore(tmp_path / "snapshots")
        store.publish("routes", old.dataset, old)
        store.publish("routes", new.dataset, new)
        service = CubeService(store, reload_interval=0)
        yield store, service
        service.close()

    def test_diff_envelope_and_cache(self, served):
        _, service = served
        out = service.diff("v000001", "v000002")
        assert out["snapshot"] == "routes"
        assert (out["from"], out["to"]) == ("v000001", "v000002")
        assert out["cached"] is False
        assert out["diff"]["entered_objects"] == ["CONCORDE"]
        again = service.diff("v000001", "v000002")
        assert again["cached"] is True
        assert again["diff"] == out["diff"]

    def test_distinct_top_cached_separately(self, served):
        _, service = served
        service.diff("v000001", "v000002", top=1)
        fresh = service.diff("v000001", "v000002", top=2)
        assert fresh["cached"] is False

    def test_bad_versions_rejected(self, served):
        _, service = served
        with pytest.raises(ValueError, match="bad version"):
            service.diff("1", "v000002")
        with pytest.raises(ValueError, match="no version"):
            service.diff("v000001", "v000099")
        with pytest.raises(ValueError, match="top"):
            service.diff("v000001", "v000002", top=0)

    def test_http_endpoint(self, served):
        from repro.serve import start_server

        from .test_serve import http_get

        _, service = served
        with start_server(service) as server:
            status, body = http_get(
                f"{server.url}/v1/diff?from=v000001&to=v000002&top=2"
            )
            assert status == 200
            assert body["diff"]["entered_objects"] == ["CONCORDE"]
            assert len(body["diff"]["churn"]["top"]) <= 2
            status, body = http_get(f"{server.url}/v1/diff?from=v000001")
            assert status == 400
            status, body = http_get(
                f"{server.url}/v1/diff?from=bogus&to=v000002"
            )
            assert status == 400
            assert body["error"] == "bad_request"


class TestDiffCLI:
    @pytest.fixture
    def snapshot_dir(self, tmp_path, versions):
        old, new = versions
        store = SnapshotStore(tmp_path / "snapshots")
        store.publish("routes", old.dataset, old)
        store.publish("routes", new.dataset, new)
        return str(tmp_path / "snapshots")

    def test_diff_table(self, snapshot_dir, capsys):
        from repro.cli import main

        rc = main(["diff", "--snapshot-dir", snapshot_dir, "--explain"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "diff routes@v000001 -> routes@v000002" in out
        assert "CONCORDE" in out
        assert "EXPLAIN cube.diff" in out

    def test_diff_json(self, snapshot_dir, capsys):
        from repro.cli import main

        rc = main(
            [
                "diff",
                "--snapshot-dir",
                snapshot_dir,
                "--from",
                "v000001",
                "--to",
                "v000002",
                "--json",
            ]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["from"] == "v000001"
        assert doc["diff"]["entered_objects"] == ["CONCORDE"]

    def test_diff_requires_older_version(self, tmp_path, versions, capsys):
        from repro.cli import main

        old, _ = versions
        store = SnapshotStore(tmp_path / "one")
        store.publish("routes", old.dataset, old)
        rc = main(["diff", "--snapshot-dir", str(tmp_path / "one")])
        assert rc == 2
        assert "no version older" in capsys.readouterr().err

    def test_compact_cli_round_trip(self, snapshot_dir, capsys):
        from repro.cli import main
        from repro.wal import WalWriter, wal_path

        with WalWriter(
            wal_path(snapshot_dir, "routes", "v000002")
        ) as writer:
            writer.append("insert", label="ZEPPELIN", row=[5.0, 170.0, 0.0])
        rc = main(["compact", "--snapshot-dir", snapshot_dir, "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["new_version"] == "v000003"
        assert doc["applied"] == 1
        rc = main(["diff", "--snapshot-dir", snapshot_dir, "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["from"] == "v000002"
        assert doc["to"] == "v000003"
        assert "ZEPPELIN" in doc["diff"]["entered_objects"]
