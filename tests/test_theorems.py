"""Property tests for the paper's theorems (1 through 5).

Theorem 5 has no dedicated test here because it *is* the extension
algorithm; its correctness is covered exhaustively by the Stellar-vs-oracle
equivalence in test_stellar_oracle.py.
"""

from hypothesis import given, settings

from repro.core.bitset import is_subset, iter_nonempty_subsets
from repro.core.cgroups import enumerate_maximal_cgroups
from repro.core.dominance import PairwiseMatrices
from repro.core.lattice import verify_quotient_for
from repro.core.stellar import stellar
from repro.core.types import Dataset
from repro.core.validate import (
    decisive_subspaces_definitional,
    decisive_subspaces_theorem4,
    is_skyline_group,
    projection_key,
)
from repro.skyline import compute_skyline
from repro.skyline.base import is_skyline_member

from .conftest import tiny_int_datasets


@settings(max_examples=80, deadline=None)
@given(tiny_int_datasets(max_objects=10, max_dims=4, max_value=3))
def test_theorem1_every_group_contains_a_seed(ds: Dataset):
    """Theorem 1: each skyline group has a full-space skyline member."""
    result = stellar(ds)
    seeds = set(result.seeds)
    for group in result.groups:
        assert group.members & seeds, group


@settings(max_examples=60, deadline=None)
@given(tiny_int_datasets(max_objects=10, max_dims=4, max_value=3))
def test_theorem2_seed_lattice_is_quotient(ds: Dataset):
    """Theorem 2: φ(G,B) = (G ∩ F(S), ·) is a surjective order-preserving
    map onto the seed lattice with well-defined fibers."""
    result = stellar(ds)
    report = verify_quotient_for(ds, result)
    assert report.is_quotient, report


@settings(max_examples=60, deadline=None)
@given(tiny_int_datasets(max_objects=8, max_dims=4, max_value=3))
def test_theorem3_sharing_characterisation(ds: Dataset):
    """Theorem 3: a multi-seed c-group is a skyline group iff every outside
    seed is beaten somewhere inside the shared subspace."""
    seeds = compute_skyline(ds)
    seed_ds = ds.take(seeds)
    matrices = PairwiseMatrices(ds, seeds)
    for local_members, subspace in enumerate_maximal_cgroups(matrices):
        if len(local_members) < 2:
            continue
        rep = local_members[0]
        member_set = set(local_members)
        condition = all(
            matrices.dom(rep, w) & subspace
            for w in range(len(seeds))
            if w not in member_set
        )
        actually_group = is_skyline_group(
            seed_ds, sorted(local_members), subspace
        )
        assert condition == actually_group


@settings(max_examples=60, deadline=None)
@given(tiny_int_datasets(max_objects=8, max_dims=4, max_value=3))
def test_theorem4_decisive_equals_hitting_sets(ds: Dataset):
    """Theorem 4 (generalised to S): Definition 2 == minimal hitting sets."""
    result = stellar(ds)
    for group in result.groups:
        members = sorted(group.members)
        definitional = decisive_subspaces_definitional(
            ds, members, group.subspace
        )
        hitting = decisive_subspaces_theorem4(ds, members, group.subspace)
        assert definitional == hitting
        assert list(group.decisive) == definitional


@settings(max_examples=40, deadline=None)
@given(tiny_int_datasets(max_objects=8, max_dims=4, max_value=3))
def test_decisive_propagation_property(ds: Dataset):
    """[10]'s propagation lemma: members of (G,B) with decisive C are
    skyline objects in every subspace A with C ⊆ A ⊆ B -- and the cube's
    ``covers_subspace`` answers exactly match brute-force membership."""
    result = stellar(ds)
    minimized = ds.minimized
    for group in result.groups:
        rep = min(group.members)
        for sub in iter_nonempty_subsets(group.subspace):
            covered = group.covers_subspace(sub)
            if covered:
                assert is_skyline_member(minimized, rep, sub)
                # exclusivity too: nobody outside shares the projection
                ref = projection_key(minimized, rep, sub)
                for o in range(ds.n_objects):
                    if o not in group.members:
                        assert projection_key(minimized, o, sub) != ref
            else:
                # not covered means: either not skyline in `sub` or the
                # projection is shared with an outside object there
                ref = projection_key(minimized, rep, sub)
                shared = any(
                    projection_key(minimized, o, sub) == ref
                    for o in range(ds.n_objects)
                    if o not in group.members
                )
                assert shared or not is_skyline_member(minimized, rep, sub)


@settings(max_examples=40, deadline=None)
@given(tiny_int_datasets(max_objects=8, max_dims=4, max_value=3))
def test_decisive_subspaces_are_minimal_antichain(ds: Dataset):
    result = stellar(ds)
    for group in result.groups:
        for a in group.decisive:
            assert a, "decisive subspaces are non-empty"
            assert is_subset(a, group.subspace)
            for b in group.decisive:
                if a != b:
                    assert not is_subset(a, b)
