"""The central correctness property: Stellar == oracle == Skyey.

The oracle (:mod:`repro.baselines.naive_cube`) implements Definitions 1-2
with exponential brute force; Stellar and Skyey must reproduce its output
-- same groups, same maximal subspaces, same decisive-subspace sets, same
projections -- on every input, including duplicates and heavy value ties.
"""

import pytest
from hypothesis import given, settings

from repro.baselines import naive_compressed_cube, skyey
from repro.core.stellar import stellar
from repro.core.types import Dataset

from .conftest import mixed_float_datasets, tiny_int_datasets


def canonical(groups):
    return [
        (g.key, g.decisive, g.projection) for g in groups
    ]


def assert_same_cube(ds: Dataset):
    expected = canonical(naive_compressed_cube(ds))
    assert canonical(stellar(ds).groups) == expected
    assert canonical(skyey(ds).groups) == expected


class TestKnownDatasets:
    def test_running_example(self, running_example):
        assert_same_cube(running_example)

    def test_example1(self, example1):
        assert_same_cube(example1)

    def test_flight_routes(self, flight_routes):
        assert_same_cube(flight_routes)

    def test_single_object(self):
        ds = Dataset.from_rows([[3, 1, 4]])
        result = stellar(ds)
        assert len(result.groups) == 1
        group = result.groups[0]
        assert group.members == frozenset({0})
        assert group.subspace == 0b111
        assert group.decisive == (0b001, 0b010, 0b100)
        assert_same_cube(ds)

    def test_empty_dataset(self):
        ds = Dataset.from_rows([], names=("A", "B"))
        assert stellar(ds).groups == []
        assert skyey(ds).groups == []
        assert naive_compressed_cube(ds) == []

    def test_one_dimension(self):
        ds = Dataset.from_rows([[3], [1], [1], [2]])
        result = stellar(ds)
        assert len(result.groups) == 1
        assert result.groups[0].members == frozenset({1, 2})
        assert_same_cube(ds)

    def test_all_objects_identical(self):
        ds = Dataset.from_rows([[2, 2]] * 4)
        result = stellar(ds)
        assert len(result.groups) == 1
        assert result.groups[0].members == frozenset(range(4))
        assert result.groups[0].decisive == (0b01, 0b10)
        assert_same_cube(ds)

    def test_max_directions(self):
        ds = Dataset.from_rows(
            [[5, 6, 10, 7], [2, 6, 8, 3], [5, 4, 9, 3], [6, 4, 8, 5], [2, 4, 9, 3]],
        )
        # Flip every value's sign and the preference: identical cube
        # structure (projections are negated raw values by construction).
        flipped = Dataset.from_rows(
            (-ds.values).tolist(), directions=("max",) * 4
        )
        structure = lambda groups: [(g.key, g.decisive) for g in groups]
        assert structure(stellar(ds).groups) == structure(stellar(flipped).groups)
        flipped_proj = [tuple(-v for v in g.projection) for g in stellar(flipped).groups]
        assert flipped_proj == [g.projection for g in stellar(ds).groups]


class TestRandomised:
    @settings(max_examples=150, deadline=None)
    @given(tiny_int_datasets(max_objects=10, max_dims=4, max_value=3))
    def test_int_grid(self, ds: Dataset):
        assert_same_cube(ds)

    @settings(max_examples=80, deadline=None)
    @given(tiny_int_datasets(max_objects=8, max_dims=5, max_value=2))
    def test_extreme_ties(self, ds: Dataset):
        assert_same_cube(ds)

    @settings(max_examples=80, deadline=None)
    @given(mixed_float_datasets(max_objects=12, max_dims=4))
    def test_mixed_floats(self, ds: Dataset):
        assert_same_cube(ds)


class TestMixedDirections:
    """Preference directions are resolved inside Dataset; the cube over a
    mixed-direction dataset must equal the cube over its hand-minimized
    twin."""

    @settings(max_examples=40, deadline=None)
    @given(tiny_int_datasets(max_objects=9, max_dims=4, max_value=3))
    def test_max_columns_equal_hand_negation(self, ds: Dataset):
        directions = tuple(
            "max" if d % 2 else "min" for d in range(ds.n_dims)
        )
        signs = [(-1.0 if x == "max" else 1.0) for x in directions]
        mixed = Dataset.from_rows(
            (ds.values * signs).tolist(), directions=directions
        )
        structure = lambda groups: [(g.key, g.decisive) for g in groups]
        assert structure(stellar(mixed).groups) == structure(stellar(ds).groups)
        assert structure(skyey(mixed).groups) == structure(stellar(ds).groups)
        assert structure(naive_compressed_cube(mixed)) == structure(
            stellar(ds).groups
        )


class TestAlgorithmIndependence:
    @settings(max_examples=30, deadline=None)
    @given(tiny_int_datasets(max_objects=10, max_dims=4, max_value=3))
    def test_cube_independent_of_seed_algorithm(self, ds: Dataset):
        """Step 1 of Stellar may use any skyline algorithm; the cube must
        not depend on the choice."""
        reference = canonical(stellar(ds, skyline_algorithm="brute").groups)
        for algorithm in ("bnl", "sfs", "dc", "less", "bitmap", "bbs", "nn"):
            assert canonical(
                stellar(ds, skyline_algorithm=algorithm).groups
            ) == reference, algorithm


class TestStellarStats:
    def test_counters(self, running_example):
        stats = stellar(running_example).stats
        assert stats.n_objects == 5
        assert stats.n_dims == 4
        assert stats.n_seeds == 3
        assert stats.n_maximal_cgroups == 6
        assert stats.n_seed_groups == 6
        assert stats.n_groups == 8
        assert set(stats.timings) == {
            "full_space_skyline",
            "maximal_cgroups",
            "seed_decisive",
            "nonseed_extension",
        }
        assert stats.total_seconds >= 0

    def test_skyline_algorithm_parameter(self, running_example):
        for algorithm in ("brute", "bnl", "sfs", "dc", "less", "bitmap", "numpy"):
            result = stellar(running_example, skyline_algorithm=algorithm)
            assert result.seeds == [1, 3, 4]

    def test_unknown_algorithm_propagates(self, running_example):
        with pytest.raises(ValueError, match="unknown skyline algorithm"):
            stellar(running_example, skyline_algorithm="nope")


class TestSkyeyStats:
    def test_counts(self, running_example):
        result = skyey(running_example)
        assert result.stats.n_subspaces_searched == 15  # 2^4 - 1
        assert result.stats.n_groups == 8
        # SkyCube sizes present for every non-empty subspace
        assert set(result.skyline_sizes) == set(range(1, 16))
        # full-space skyline has the 3 seeds
        assert result.skyline_sizes[0b1111] == 3
        assert result.stats.n_subspace_skyline_objects == sum(
            result.skyline_sizes.values()
        )
