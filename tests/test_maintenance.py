"""Tests for incremental cube maintenance (fast paths + soundness)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stellar import stellar
from repro.core.types import Dataset
from repro.cube import MaintainedCube


def cube_state(cube):
    return sorted((g.key, g.decisive) for g in cube.groups)


class TestFastInsert:
    def test_irrelevant_insert_is_fast_and_correct(self):
        ds = Dataset.from_rows([[0, 0], [5, 5]])
        mc = MaintainedCube(ds)
        # (7, 9): dominated by (0,0) and (5,5); ties nobody.
        assert mc.insert([7, 9]) is True
        assert mc.stats.fast_inserts == 1
        assert cube_state(mc.cube) == cube_state(
            type(mc.cube)(mc.dataset, stellar(mc.dataset).groups)
        )

    def test_new_seed_forces_recompute(self):
        ds = Dataset.from_rows([[5, 5], [6, 6]])
        mc = MaintainedCube(ds)
        assert mc.insert([0, 0]) is False
        assert mc.stats.full_inserts == 1
        assert mc.seeds == [2]

    def test_tie_with_seed_forces_recompute(self):
        ds = Dataset.from_rows([[0, 0], [9, 9]])
        mc = MaintainedCube(ds)
        # (0, 5) is dominated by (0,0) but ties the seed on A.
        assert mc.insert([0, 5]) is False

    def test_duplicate_label_rejected(self):
        mc = MaintainedCube(Dataset.from_rows([[1, 2]]))
        with pytest.raises(ValueError, match="duplicate object label"):
            mc.insert([3, 4], label="P1")

    def test_fresh_labels_generated(self):
        mc = MaintainedCube(Dataset.from_rows([[1, 2]]))
        mc.insert([3, 4])
        assert mc.dataset.labels == ("P1", "P2")


class TestDelete:
    def test_delete_ungrouped_is_fast(self, running_example):
        mc = MaintainedCube(running_example)
        assert mc.delete("P1") is True
        assert mc.stats.fast_deletes == 1
        assert cube_state(mc.cube) == cube_state(
            type(mc.cube)(mc.dataset, stellar(mc.dataset).groups)
        )
        # indices were remapped consistently
        assert mc.dataset.labels == ("P2", "P3", "P4", "P5")
        assert sorted(mc.seeds) == sorted(stellar(mc.dataset).seeds)

    def test_delete_grouped_recomputes(self, running_example):
        mc = MaintainedCube(running_example)
        assert mc.delete("P5") is False
        assert mc.stats.full_deletes == 1
        assert cube_state(mc.cube) == cube_state(
            type(mc.cube)(mc.dataset, stellar(mc.dataset).groups)
        )

    def test_delete_unknown_label(self, running_example):
        mc = MaintainedCube(running_example)
        with pytest.raises(ValueError, match="unknown object label"):
            mc.delete("P99")

    def test_stats_history(self, running_example):
        mc = MaintainedCube(running_example)
        mc.delete("P1")
        mc.insert([9, 9, 99, 99])
        assert mc.stats.total == 2
        assert len(mc.stats.history) == 2


class TestMutationValidation:
    """Rejected mutations must leave cube, stats, and labels untouched.

    The WAL layer relies on ``check_insert``/``check_delete`` raising
    *before* anything is logged or applied, so a refused update is
    invisible everywhere.
    """

    def test_check_insert_duplicate_label(self, running_example):
        mc = MaintainedCube(running_example)
        with pytest.raises(ValueError, match="duplicate object label"):
            mc.check_insert([1, 1, 1, 1], label="P1")

    def test_check_insert_wrong_width(self, running_example):
        mc = MaintainedCube(running_example)
        with pytest.raises(ValueError, match="dimensions"):
            mc.check_insert([1, 2])

    def test_check_delete_unknown_label(self, running_example):
        mc = MaintainedCube(running_example)
        with pytest.raises(ValueError, match="unknown object label"):
            mc.check_delete("P99")

    def test_failed_delete_leaves_stats_untouched(self, running_example):
        mc = MaintainedCube(running_example)
        before = cube_state(mc.cube)
        with pytest.raises(ValueError):
            mc.delete("P99")
        assert mc.stats.total == 0
        assert mc.stats.history == []
        assert cube_state(mc.cube) == before
        assert mc.dataset.labels == running_example.labels

    def test_failed_insert_leaves_stats_untouched(self, running_example):
        mc = MaintainedCube(running_example)
        before = cube_state(mc.cube)
        with pytest.raises(ValueError):
            mc.insert([1, 2])  # wrong width
        assert mc.stats.total == 0
        assert cube_state(mc.cube) == before
        assert mc.dataset.n_objects == running_example.n_objects

    def test_insert_delete_insert_round_trip(self, running_example):
        """Re-inserting a deleted row converges to the fresh build."""
        row = [1, 5, 8, 2]
        mc = MaintainedCube(running_example)
        mc.insert(row, label="X")
        mc.delete("X")
        mc.insert(row, label="X")
        fresh = MaintainedCube(running_example)
        fresh.insert(row, label="X")
        assert mc.dataset.labels == fresh.dataset.labels
        assert cube_state(mc.cube) == cube_state(fresh.cube)
        assert sorted(mc.seeds) == sorted(fresh.seeds)
        # And both equal a from-scratch recompute on the final dataset.
        assert cube_state(mc.cube) == sorted(
            (g.key, g.decisive) for g in stellar(mc.dataset).groups
        )

    def test_delete_after_delete_of_same_label(self, running_example):
        mc = MaintainedCube(running_example)
        mc.delete("P1")
        with pytest.raises(ValueError, match="unknown object label"):
            mc.delete("P1")
        assert mc.stats.total == 1


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=4), min_size=3, max_size=3),
        min_size=2,
        max_size=6,
    ),
    st.integers(min_value=0, max_value=10_000),
)
def test_update_stream_always_matches_recompute(rows, seed):
    """Soundness under arbitrary update streams."""
    rng = random.Random(seed)
    mc = MaintainedCube(Dataset.from_rows(rows))
    for _ in range(6):
        if rng.random() < 0.6 or mc.dataset.n_objects <= 1:
            mc.insert([rng.randint(0, 4) for _ in range(3)])
        else:
            mc.delete(rng.choice(mc.dataset.labels))
        fresh = stellar(mc.dataset)
        assert cube_state(mc.cube) == sorted(
            (g.key, g.decisive) for g in fresh.groups
        )
        assert sorted(mc.seeds) == sorted(fresh.seeds)
