"""Tests for the k-dominant skyline extension."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.types import Dataset
from repro.skyline import skyline_brute
from repro.skyline.kdominant import k_dominant_skyline, k_dominates

from .conftest import tiny_int_datasets


class TestKDominates:
    def test_classic_dominance_is_d_dominance(self):
        u = np.array([1.0, 2.0, 3.0])
        v = np.array([2.0, 2.0, 4.0])
        assert k_dominates(u, v, 3)
        assert not k_dominates(v, u, 3)

    def test_partial_dominance(self):
        u = np.array([1.0, 9.0])
        v = np.array([2.0, 1.0])
        # u beats v on dim 0 only: 1-dominates but not 2-dominates
        assert k_dominates(u, v, 1)
        assert not k_dominates(u, v, 2)
        # and symmetrically v 1-dominates u: cyclic dominance
        assert k_dominates(v, u, 1)

    def test_equal_rows_never_dominate(self):
        u = np.array([1.0, 1.0])
        assert not k_dominates(u, u.copy(), 1)


class TestKDominantSkyline:
    def test_k_equals_d_is_classic_skyline(self, running_example):
        m = running_example.minimized
        assert k_dominant_skyline(m, 4) == skyline_brute(m)

    def test_shrinks_as_k_decreases(self, running_example):
        m = running_example.minimized
        previous = None
        for k in range(4, 0, -1):
            current = set(k_dominant_skyline(m, k))
            if previous is not None:
                assert current <= previous
            previous = current

    def test_can_be_empty_on_cycles(self):
        # three objects in a 1-dominance cycle
        m = np.array([[1.0, 2.0, 3.0], [3.0, 1.0, 2.0], [2.0, 3.0, 1.0]])
        assert k_dominant_skyline(m, 1) == []
        assert k_dominant_skyline(m, 3) == [0, 1, 2]

    def test_subspace_parameter(self, running_example):
        m = running_example.minimized
        assert k_dominant_skyline(m, 2, subspace=0b1010) == skyline_brute(
            m, 0b1010
        )

    def test_invalid_k(self, running_example):
        m = running_example.minimized
        with pytest.raises(ValueError):
            k_dominant_skyline(m, 0)
        with pytest.raises(ValueError):
            k_dominant_skyline(m, 5)

    def test_empty_input(self):
        assert k_dominant_skyline(np.empty((0, 2)), 1) == []

    @settings(max_examples=50, deadline=None)
    @given(tiny_int_datasets(max_objects=10, max_dims=4, max_value=3))
    def test_matches_pairwise_definition(self, ds: Dataset):
        m = ds.minimized
        d = ds.n_dims
        for k in range(1, d + 1):
            got = k_dominant_skyline(m, k)
            expected = [
                i
                for i in range(ds.n_objects)
                if not any(
                    j != i and k_dominates(m[j], m[i], k)
                    for j in range(ds.n_objects)
                )
            ]
            assert got == expected
        assert k_dominant_skyline(m, d) == skyline_brute(m)

    @settings(max_examples=40, deadline=None)
    @given(tiny_int_datasets(max_objects=10, max_dims=4, max_value=3))
    def test_subset_of_classic_skyline(self, ds: Dataset):
        m = ds.minimized
        classic = set(skyline_brute(m))
        for k in range(1, ds.n_dims + 1):
            assert set(k_dominant_skyline(m, k)) <= classic
