"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def routes_csv(tmp_path, flight_routes):
    from repro.data import save_csv

    path = tmp_path / "routes.csv"
    save_csv(flight_routes, path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench", "fig8"])
        assert args.scale == "default"
        assert args.out is None

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert "1.0.0" in capsys.readouterr().out

    def test_help_epilog_lists_observability_flags(self):
        text = build_parser().format_help()
        assert "--trace" in text
        assert "--metrics" in text
        assert "--profile" in text

    def test_observability_flags_on_every_subcommand(self):
        args = build_parser().parse_args(
            ["run", "--input", "x.csv", "--trace", "t.json", "--metrics"]
        )
        assert args.trace == "t.json"
        assert args.metrics is True
        assert args.profile is False
        args = build_parser().parse_args(["query", "--input", "x.csv",
                                         "--skyline-of", "A", "--trace"])
        assert args.trace == "-"  # console-tree mode


class TestGenerate:
    def test_generate_synthetic(self, tmp_path, capsys):
        out = tmp_path / "data.csv"
        rc = main([
            "generate", "--distribution", "anti", "--n", "30",
            "--d", "3", "--seed", "4", "--out", str(out),
        ])
        assert rc == 0
        assert out.exists()
        assert "30 x 3" in capsys.readouterr().out

    def test_generate_nba(self, tmp_path, capsys):
        out = tmp_path / "nba.csv"
        rc = main([
            "generate", "--distribution", "nba", "--n", "50", "--out", str(out),
        ])
        assert rc == 0
        from repro.data import load_csv

        ds = load_csv(out)
        assert ds.n_dims == 17


class TestRun:
    def test_run_stellar(self, routes_csv, capsys):
        assert main(["run", "--input", routes_csv]) == 0
        out = capsys.readouterr().out
        assert "stellar:" in out
        assert "groups" in out

    def test_run_skyey(self, routes_csv, capsys):
        assert main(["run", "--input", routes_csv, "--algorithm", "skyey"]) == 0
        out = capsys.readouterr().out
        assert "skyey:" in out
        assert "subspaces searched" in out

    def test_run_limits_output(self, routes_csv, capsys):
        assert main(["run", "--input", routes_csv, "--max-groups", "1"]) == 0
        out = capsys.readouterr().out
        assert "more groups" in out


class TestSkyline:
    def test_full_space(self, routes_csv, capsys):
        assert main(["skyline", "--input", routes_csv]) == 0
        out = capsys.readouterr().out
        assert "full space" in out
        assert "BUDGET-LHR" in out

    def test_subspace(self, routes_csv, capsys):
        assert main([
            "skyline", "--input", routes_csv, "--subspace", "price,stops",
        ]) == 0
        assert "3 objects" in capsys.readouterr().out


class TestQuery:
    def test_skyline_of(self, routes_csv, capsys):
        assert main(["query", "--input", routes_csv, "--skyline-of", "price"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out == ["BUDGET-LHR", "MULTIHOP"]

    def test_where_wins(self, routes_csv, capsys):
        assert main(["query", "--input", routes_csv, "--where-wins", "DIRECT"]) == 0
        out = capsys.readouterr().out
        assert "traveltime" in out


class TestCube:
    def test_precompute_and_query(self, routes_csv, tmp_path, capsys):
        cube_path = tmp_path / "routes.cube"
        assert main(["cube", "--input", routes_csv, "--out", str(cube_path)]) == 0
        assert "skyline groups" in capsys.readouterr().out
        assert main([
            "query", "--input", routes_csv, "--cube", str(cube_path),
            "--skyline-of", "price",
        ]) == 0
        assert capsys.readouterr().out.splitlines() == ["BUDGET-LHR", "MULTIHOP"]

    def test_top_frequent(self, routes_csv, capsys):
        assert main([
            "query", "--input", routes_csv, "--top-frequent", "2",
        ]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 2
        assert "\t" in lines[0]


class TestAnalyze:
    def test_analyze_fresh(self, routes_csv, capsys):
        assert main(["analyze", "--input", routes_csv]) == 0
        out = capsys.readouterr().out
        assert "skyline groups" in out
        assert "dimension influence" in out
        assert "robust winners" in out

    def test_analyze_from_saved_cube(self, routes_csv, tmp_path, capsys):
        cube_path = tmp_path / "c.json"
        assert main(["cube", "--input", routes_csv, "--out", str(cube_path)]) == 0
        capsys.readouterr()
        assert main([
            "analyze", "--input", routes_csv, "--cube", str(cube_path),
        ]) == 0
        assert "compression" in capsys.readouterr().out


class TestObservabilityFlags:
    @pytest.fixture(autouse=True)
    def _clean(self):
        from repro.obs import disable_tracing, reset_metrics

        disable_tracing()
        reset_metrics()
        yield
        disable_tracing()
        reset_metrics()

    def test_run_trace_writes_chrome_trace(self, routes_csv, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        assert main([
            "run", "--input", routes_csv, "--trace", str(trace_path),
        ]) == 0
        assert trace_path.exists()
        doc = json.loads(trace_path.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert {
            "stellar",
            "full_space_skyline",
            "maximal_cgroups",
            "seed_decisive",
            "nonseed_extension",
        } <= names
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"

    def test_run_trace_ndjson(self, routes_csv, tmp_path):
        from repro.obs import spans_from_ndjson

        trace_path = tmp_path / "trace.ndjson"
        assert main([
            "run", "--input", routes_csv, "--trace", str(trace_path),
        ]) == 0
        roots = spans_from_ndjson(trace_path.read_text())
        assert roots[0].name == "stellar"

    def test_trace_console_tree(self, routes_csv, capsys):
        assert main(["run", "--input", routes_csv, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "stellar" in out
        assert "full_space_skyline" in out
        assert "ms" in out

    def test_query_metrics_prints_percentiles(self, routes_csv, capsys):
        assert main([
            "query", "--input", routes_csv, "--skyline-of", "price",
            "--metrics",
        ]) == 0
        out = capsys.readouterr().out
        assert "query.q1.seconds" in out
        assert "p50" in out and "p95" in out and "p99" in out
        assert "dominance.comparisons" in out

    def test_profile_prints_hotspots(self, routes_csv, capsys):
        assert main(["run", "--input", routes_csv, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile:" in out
        assert "calls" in out

    def test_bench_emits_trace_next_to_results(self, tmp_path, capsys):
        assert main([
            "bench", "fig10", "--scale", "smoke", "--out", str(tmp_path),
            "--trace", str(tmp_path / "all.json"),
        ]) == 0
        assert (tmp_path / "figure_10.trace.json").exists()


class TestBench:
    def test_bench_fig10_smoke(self, tmp_path, capsys):
        rc = main([
            "bench", "fig10", "--scale", "smoke", "--out", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out
        assert (tmp_path / "figure_10.txt").exists()

    def test_bench_unknown_figure(self):
        with pytest.raises(ValueError, match="unknown figure"):
            main(["bench", "fig99", "--scale", "smoke"])
