"""Tests for maximal c-group enumeration (Figure 6 / Example 8)."""

from itertools import combinations

from hypothesis import given, settings

from repro.core.cgroups import enumerate_maximal_cgroups
from repro.core.dominance import PairwiseMatrices
from repro.core.types import Dataset
from repro.core.validate import common_coincidence_mask, projection_key

from .conftest import tiny_int_datasets


def brute_maximal_cgroups(ds: Dataset) -> set[tuple[tuple[int, ...], int]]:
    """Reference: test every subset of objects against Definition 1."""
    minimized = ds.minimized
    n = ds.n_objects
    found = set()
    for size in range(1, n + 1):
        for members in combinations(range(n), size):
            mask = common_coincidence_mask(minimized, list(members))
            if mask == 0:
                continue
            ref = projection_key(minimized, members[0], mask)
            outsiders = [
                o
                for o in range(n)
                if o not in members
                and projection_key(minimized, o, mask) == ref
            ]
            if not outsiders:
                found.add((members, mask))
    return found


class TestRunningExample:
    def test_seed_cgroups(self, running_example):
        matrices = PairwiseMatrices(running_example, [1, 3, 4])
        got = set(enumerate_maximal_cgroups(matrices))
        # local indices: 0=P2, 1=P4, 2=P5
        expected = {
            ((0,), 0b1111),
            ((1,), 0b1111),
            ((2,), 0b1111),
            ((0, 1), 0b0100),  # P2P4 share C
            ((0, 2), 0b1001),  # P2P5 share AD
            ((1, 2), 0b0010),  # P4P5 share B
        }
        assert got == expected


class TestPaperExample8:
    """The search trace of Example 8 on its 5-object coincidence matrix."""

    def _matrices(self):
        # Values engineered to reproduce the coincidence-matrix segment of
        # Example 8: co(o1,o2)=ACD, co(o1,o3)=B, co(o1,o4)=ABCD,
        # co(o1,o5)=CD, co(o2,o3)=∅, co(o2,o5)=BCD.  (The paper's printed
        # segment also lists co(o2,o4)=CD, which no point set can realise:
        # co(o1,o4)=ABCD makes o4 a duplicate of o1, forcing
        # co(o2,o4)=co(o2,o1)=ACD.  The realizable variant preserves every
        # search step the example narrates, including the o2o4 prune.)
        ds = Dataset.from_rows(
            [
                [0, 0, 0, 0],  # o1
                [0, 1, 0, 0],  # o2
                [9, 0, 8, 7],  # o3
                [0, 0, 0, 0],  # o4 -- duplicate of o1: co = ABCD
                [5, 1, 0, 0],  # o5
            ]
        )
        return PairwiseMatrices(ds, [0, 1, 2, 3, 4])

    def test_example8_groups(self):
        matrices = self._matrices()
        got = set(enumerate_maximal_cgroups(matrices))
        A, B, C, D = 1, 2, 4, 8
        expected = {
            ((0, 3), A | B | C | D),        # o1 o4 in ABCD
            ((0, 1, 3), A | C | D),         # o1 o2 o4 in ACD
            ((0, 1, 3, 4), C | D),          # o1 o2 o4 o5 in CD
            ((0, 2, 3), B),                 # o1 o3 o4 in B
            ((1,), A | B | C | D),          # singleton o2
            ((1, 4), B | C | D),            # o2 o5 in BCD
            ((2,), A | B | C | D),          # singleton o3
            ((4,), A | B | C | D),          # singleton o5
        }
        assert got == expected

    def test_example8_prunes_nonmaximal_o2o4(self):
        """Any group with o2 o4 but not o1 is pruned (Example 8's point)."""
        matrices = self._matrices()
        for members, _ in enumerate_maximal_cgroups(matrices):
            if 1 in members and 3 in members:
                assert 0 in members


class TestEdgeCases:
    def test_single_object(self):
        ds = Dataset.from_rows([[1, 2]])
        matrices = PairwiseMatrices(ds, [0])
        assert enumerate_maximal_cgroups(matrices) == [((0,), 0b11)]

    def test_empty(self):
        ds = Dataset.from_rows([], names=("A",))
        matrices = PairwiseMatrices(ds, [])
        assert enumerate_maximal_cgroups(matrices) == []

    def test_all_duplicates_single_group(self):
        ds = Dataset.from_rows([[1, 1], [1, 1], [1, 1]])
        matrices = PairwiseMatrices(ds, [0, 1, 2])
        assert enumerate_maximal_cgroups(matrices) == [((0, 1, 2), 0b11)]

    def test_no_sharing_only_singletons(self):
        ds = Dataset.from_rows([[1, 4], [2, 5], [3, 6]])
        matrices = PairwiseMatrices(ds, [0, 1, 2])
        got = set(enumerate_maximal_cgroups(matrices))
        assert got == {((0,), 0b11), ((1,), 0b11), ((2,), 0b11)}


@settings(max_examples=80, deadline=None)
@given(tiny_int_datasets(max_objects=8, max_dims=4, max_value=2))
def test_enumeration_matches_bruteforce(ds: Dataset):
    matrices = PairwiseMatrices(ds, list(range(ds.n_objects)))
    got = enumerate_maximal_cgroups(matrices)
    # no duplicates: each closed group is emitted exactly once
    assert len(set(got)) == len(got)
    assert set(got) == brute_maximal_cgroups(ds)
