"""Tests for the B+-tree index substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import BPlusTree

ORDERS = (3, 4, 5, 8, 64)


class TestBasics:
    def test_empty(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert list(tree.items()) == []
        assert tree.get(1) is None
        assert tree.get(1, "x") == "x"
        assert 1 not in tree
        with pytest.raises(KeyError):
            tree.min_item()

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_insert_get(self):
        tree = BPlusTree(order=4)
        for k in (5, 1, 9, 3, 7):
            tree.insert(k, k * 10)
        assert len(tree) == 5
        assert tree.get(3) == 30
        assert 9 in tree
        assert tree.min_item() == (1, 10)
        assert [k for k, _ in tree.items()] == [1, 3, 5, 7, 9]

    def test_duplicate_insert_rejected(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        with pytest.raises(KeyError, match="duplicate"):
            tree.insert(1, "b")
        assert tree.get(1) == "a"

    def test_delete(self):
        tree = BPlusTree(order=4)
        for k in range(20):
            tree.insert(k, k)
        for k in range(0, 20, 2):
            assert tree.delete(k) == k
        assert [k for k, _ in tree.items()] == list(range(1, 20, 2))
        with pytest.raises(KeyError):
            tree.delete(0)

    def test_delete_to_empty_and_reuse(self):
        tree = BPlusTree(order=3)
        for k in range(10):
            tree.insert(k, k)
        for k in range(10):
            tree.delete(k)
        assert len(tree) == 0
        tree.insert(42, "back")
        assert tree.get(42) == "back"
        tree.check_invariants()

    def test_tuple_keys(self):
        tree = BPlusTree(order=4)
        tree.insert((1.0, 2.0, 3), "a")
        tree.insert((1.0, 1.0, 7), "b")
        assert tree.min_item()[1] == "b"


class TestRange:
    def setup_method(self):
        self.tree = BPlusTree(order=4)
        for k in range(0, 100, 3):
            self.tree.insert(k, -k)

    def test_half_open(self):
        got = [k for k, _ in self.tree.range(10, 30)]
        assert got == [12, 15, 18, 21, 24, 27]

    def test_open_ended(self):
        assert [k for k, _ in self.tree.range(90, None)] == [90, 93, 96, 99]
        assert [k for k, _ in self.tree.range(None, 7)] == [0, 3, 6]
        assert len(list(self.tree.range())) == len(self.tree)

    def test_empty_window(self):
        assert list(self.tree.range(13, 14)) == []


class TestBulkLoad:
    @pytest.mark.parametrize("order", ORDERS)
    @pytest.mark.parametrize("n", (0, 1, 2, 3, 7, 50, 333))
    def test_sizes_and_orders(self, order, n):
        pairs = [(i, str(i)) for i in range(n)]
        tree = BPlusTree.bulk_load(pairs, order=order)
        tree.check_invariants()
        assert list(tree.items()) == pairs
        assert len(tree) == n

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            BPlusTree.bulk_load([(2, 0), (1, 0)])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            BPlusTree.bulk_load([(1, 0), (1, 1)])

    def test_mutation_after_bulk_load(self):
        tree = BPlusTree.bulk_load([(i, i) for i in range(100)], order=5)
        tree.insert(3.5, "new")
        tree.delete(50)
        tree.check_invariants()
        assert tree.get(3.5) == "new"
        assert 50 not in tree


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=3, max_value=16),
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=60)),
        max_size=80,
    ),
)
def test_model_based(order, operations):
    """The tree behaves like a sorted dict under arbitrary op sequences."""
    tree = BPlusTree(order=order)
    model: dict[int, int] = {}
    for is_insert, key in operations:
        if is_insert:
            if key in model:
                with pytest.raises(KeyError):
                    tree.insert(key, key)
            else:
                tree.insert(key, key)
                model[key] = key
        else:
            if key in model:
                assert tree.delete(key) == model.pop(key)
            else:
                with pytest.raises(KeyError):
                    tree.delete(key)
        tree.check_invariants()
    assert list(tree.items()) == sorted(model.items())
    assert len(tree) == len(model)
