"""Tests for the R-tree substrate and the BBS skyline algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.types import Dataset
from repro.index.rtree import RTree
from repro.skyline import skyline_brute
from repro.skyline.bbs import bbs_progressive, skyline_bbs

from .conftest import tiny_int_datasets


class TestRTree:
    def test_empty(self):
        tree = RTree(np.empty((0, 3)))
        assert tree.root is None
        tree.check_invariants()

    def test_single_point(self):
        tree = RTree(np.array([[1.0, 2.0]]), capacity=4)
        tree.check_invariants()
        assert tree.root.is_leaf
        assert tree.root.point_ids == [0]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RTree(np.zeros((1, 2)), capacity=1)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            RTree(np.zeros(3))

    def test_all_points_covered_and_balanced(self):
        rng = np.random.default_rng(0)
        for n in (5, 33, 100, 257):
            tree = RTree(rng.random((n, 3)), capacity=5)
            tree.check_invariants()

    def test_duplicates_handled(self):
        tree = RTree(np.ones((50, 2)), capacity=4)
        tree.check_invariants()

    def test_one_dimension(self):
        tree = RTree(np.arange(40, dtype=float).reshape(-1, 1), capacity=4)
        tree.check_invariants()

    @settings(max_examples=40, deadline=None)
    @given(tiny_int_datasets(max_objects=30, max_dims=4, max_value=4))
    def test_invariants_on_random_data(self, ds: Dataset):
        RTree(ds.minimized, capacity=3).check_invariants()


class TestBBS:
    def test_matches_brute_on_running_example(self, running_example):
        m = running_example.minimized
        for subspace in range(1, 16):
            assert skyline_bbs(m, subspace) == skyline_brute(m, subspace)

    def test_duplicate_skyline_points_kept(self):
        """An MBR corner equal to a found skyline point hides duplicates
        that must not be pruned."""
        rows = [[0.0, 0.0]] * 10 + [[1.0, 1.0]] * 5
        m = np.array(rows)
        assert skyline_bbs(m, None) == list(range(10))

    def test_progressive_order_is_monotone(self):
        rng = np.random.default_rng(4)
        m = rng.random((300, 3))
        order = list(bbs_progressive(m))
        sums = m[order].sum(axis=1)
        assert np.all(np.diff(sums) >= 0)
        assert sorted(order) == skyline_brute(m, None)

    def test_progressive_first_result_before_full_traversal(self):
        """Progressiveness: the first skyline point appears after touching
        only a root-to-leaf path's worth of entries."""
        rng = np.random.default_rng(5)
        m = rng.random((5000, 3))
        stream = bbs_progressive(m)
        first = next(stream)
        assert first in set(skyline_brute(m, None))

    @settings(max_examples=60, deadline=None)
    @given(tiny_int_datasets(max_objects=25, max_dims=4, max_value=3))
    def test_matches_brute_randomised(self, ds: Dataset):
        m = ds.minimized
        assert skyline_bbs(m, None) == skyline_brute(m, None)

    def test_registered(self):
        from repro.skyline import SKYLINE_ALGORITHMS

        assert "bbs" in SKYLINE_ALGORITHMS
