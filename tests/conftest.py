"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro import Dataset


@pytest.fixture
def running_example() -> Dataset:
    """The 5-object, 4-dimensional table of Figure 2 (smaller is better)."""
    return Dataset.from_rows(
        [
            [5, 6, 10, 7],  # P1
            [2, 6, 8, 3],   # P2
            [5, 4, 9, 3],   # P3
            [6, 4, 8, 5],   # P4
            [2, 4, 9, 3],   # P5
        ],
        names=("A", "B", "C", "D"),
    )


@pytest.fixture
def example1() -> Dataset:
    """The 5-object, 2-dimensional set of Example 1 / Figure 1.

    Values read off the paper's scatter plot: a=(1, 6), b=(2, 4),
    c=(4, 3.5), d=(3.5, 2.5), e=(6, 1).  The stated subspace skylines
    (XY: b, d, e; X: a, b; Y: e) pin the geometry:
    a shares X=... no sharing; a is lowest in X together with nothing --
    the paper lists the X skyline as {a, b}, so a and b tie on X = 2.
    """
    return Dataset.from_rows(
        [
            [2.0, 6.0],  # a
            [2.0, 4.0],  # b
            [4.0, 3.5],  # c
            [3.5, 2.5],  # d
            [6.0, 1.0],  # e
        ],
        names=("X", "Y"),
        labels=("a", "b", "c", "d", "e"),
    )


@pytest.fixture
def flight_routes() -> Dataset:
    """The flight-ticket catalogue of examples/flight_tickets.py."""
    rows = [
        [980.0, 14.5, 1],
        [720.0, 18.0, 2],
        [980.0, 16.0, 1],
        [1450.0, 12.0, 0],
        [720.0, 21.5, 3],
        [860.0, 14.5, 1],
        [1450.0, 13.0, 1],
        [990.0, 18.0, 2],
    ]
    labels = (
        "LH-FRA", "BUDGET-LHR", "KL-AMS", "DIRECT", "MULTIHOP",
        "TK-YVR", "PREMIUM", "SLOW-EXPENSIVE",
    )
    return Dataset.from_rows(
        rows,
        names=("price", "traveltime", "stops"),
        directions=("min", "min", "min"),
        labels=labels,
    )


def tiny_int_datasets(
    max_objects: int = 10, max_dims: int = 4, max_value: int = 4
) -> st.SearchStrategy[Dataset]:
    """Datasets over a small integer grid: heavy ties and duplicates.

    The small value domain is deliberate -- it makes multi-object c-groups,
    shared decisive-subspace values and exact duplicates common, which is
    where the interesting (and historically buggy) code paths live.
    """
    def build(payload) -> Dataset:
        d, rows = payload
        return Dataset.from_rows([row[:d] for row in rows])

    return st.integers(min_value=1, max_value=max_dims).flatmap(
        lambda d: st.tuples(
            st.just(d),
            st.lists(
                st.lists(
                    st.integers(min_value=0, max_value=max_value),
                    min_size=d,
                    max_size=d,
                ),
                min_size=1,
                max_size=max_objects,
            ),
        )
    ).map(build)


def mixed_float_datasets(
    max_objects: int = 12, max_dims: int = 4
) -> st.SearchStrategy[Dataset]:
    """Datasets mixing a coarse float grid (ties) with distinct values."""
    value = st.one_of(
        st.integers(min_value=0, max_value=3).map(float),
        st.floats(
            min_value=0.0,
            max_value=1.0,
            allow_nan=False,
            allow_infinity=False,
        ).map(lambda x: round(x, 1)),
    )

    def build(payload) -> Dataset:
        d, rows = payload
        return Dataset.from_rows([row[:d] for row in rows])

    return st.integers(min_value=1, max_value=max_dims).flatmap(
        lambda d: st.tuples(
            st.just(d),
            st.lists(
                st.lists(value, min_size=d, max_size=d),
                min_size=1,
                max_size=max_objects,
            ),
        )
    ).map(build)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
