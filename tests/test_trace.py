"""Tests for end-to-end request correlation (PR 8).

Covers the W3C ``traceparent`` codec and ContextVar plumbing
(repro.obs.context), trace propagation across the process-pool boundary
(repro.parallel.backend shipping the ambient context to workers), the
serving layer's header contract (``x-repro-trace-id`` echoed on every
response, sheds included), the tail-sampling trace sink with
cross-process reassembly and wall-clock phase attribution
(repro.obs.tracesink), OpenMetrics exemplars + content negotiation
(repro.obs.promexport), slow-query-log trace correlation, the loadtest
report's slowest-requests table, and the ``repro trace`` CLI.
"""

import json
import multiprocessing
import os

import pytest

from repro.cli import main
from repro.cube import CompressedSkylineCube
from repro.loadtest.report import slowest, summarize
from repro.loadtest.runner import (
    LoadtestConfig,
    LoadtestResult,
    RequestRecord,
)
from repro.obs import (
    TraceContext,
    configure_slow_query_log,
    current_trace_context,
    disable_tracing,
    enable_tracing,
    format_span_id,
    parse_traceparent,
    registry,
    slow_query_log,
    trace_keep,
    use_trace_context,
)
from repro.obs.promexport import (
    OPENMETRICS_CONTENT_TYPE,
    PROMETHEUS_CONTENT_TYPE,
    negotiate_exposition,
    render_openmetrics,
    render_prometheus,
)
from repro.obs.slo import SLOEngine, default_serving_slos
from repro.obs.tracesink import (
    TraceSink,
    assemble_trace,
    critical_path,
    list_traces,
    load_trace,
    span_records,
)
from repro.obs.tracing import Span, Tracer
from repro.parallel import map_shards, parse_parallel_spec
from repro.serve import AdmissionController, CubeService, SnapshotStore

_FORK = "fork" in multiprocessing.get_all_start_methods()

TID = "0af7651916cd43dd8448eb211c80319c"


@pytest.fixture(autouse=True)
def _clean_registry():
    registry().reset()
    yield
    registry().reset()


# -- traceparent codec -------------------------------------------------------


class TestTraceparent:
    def test_round_trip(self):
        ctx = TraceContext.new("/v1/skyline")
        parsed = parse_traceparent(ctx.child(0x1234).to_traceparent())
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        assert parsed.parent_span_id == 0x1234
        assert parsed.sampled is True

    def test_spec_example_parses(self):
        ctx = parse_traceparent(f"00-{TID}-00f067aa0ba902b7-01")
        assert ctx.trace_id == TID
        assert ctx.parent_span_id == 0x00F067AA0BA902B7
        assert ctx.sampled is True

    def test_unsampled_flag(self):
        ctx = parse_traceparent(f"00-{TID}-00f067aa0ba902b7-00")
        assert ctx.sampled is False

    @pytest.mark.parametrize(
        "value",
        [
            None,
            "",
            "garbage",
            f"00-{TID}-00f067aa0ba902b7",  # missing flags
            f"00-{TID[:-1]}-00f067aa0ba902b7-01",  # short trace id
            f"00-{TID.upper()}-00f067aa0ba902b7-01",  # uppercase hex
            f"ff-{TID}-00f067aa0ba902b7-01",  # forbidden version
            "00-" + "0" * 32 + "-00f067aa0ba902b7-01",  # zero trace id
            f"00-{TID}-" + "0" * 16 + "-01",  # zero parent id
            f"00-{TID}-00f067aa0ba902b7-01-extra",  # v00 trailing data
        ],
    )
    def test_malformed_values_rejected(self, value):
        assert parse_traceparent(value) is None

    def test_future_version_with_extra_fields_parses(self):
        ctx = parse_traceparent(f"01-{TID}-00f067aa0ba902b7-01-future-stuff")
        assert ctx is not None
        assert ctx.trace_id == TID

    def test_new_contexts_are_distinct(self):
        a, b = TraceContext.new(), TraceContext.new()
        assert a.trace_id != b.trace_id
        assert len(a.trace_id) == 32

    def test_format_span_id_is_16_hex(self):
        assert format_span_id(0x1234) == "0000000000001234"
        assert len(format_span_id(2**64 + 5)) == 16

    def test_dict_round_trip(self):
        ctx = TraceContext.new("/v1/why-not").child(7)
        assert TraceContext.from_dict(ctx.to_dict()) == ctx


class TestTraceKeep:
    def test_deterministic(self):
        assert trace_keep(TID, 0.5) == trace_keep(TID, 0.5)

    def test_extremes(self):
        assert trace_keep(TID, 1.0) is True
        assert trace_keep(TID, 0.0) is False


class TestContextVar:
    def test_default_is_none(self):
        assert current_trace_context() is None

    def test_use_installs_and_restores(self):
        ctx = TraceContext.new()
        with use_trace_context(ctx):
            assert current_trace_context() is ctx
        assert current_trace_context() is None

    def test_spans_pick_up_trace_id(self):
        tracer = Tracer()
        ctx = TraceContext.new().child(99)
        with use_trace_context(ctx):
            with tracer.span("outer") as outer:
                with tracer.span("inner") as inner:
                    pass
        assert outer.trace_id == ctx.trace_id
        assert outer.parent_span_id == 99
        assert inner.trace_id == ctx.trace_id
        assert inner.parent_span_id == outer.span_id


# -- propagation across the pool boundary ------------------------------------


def _shard_context(_item):
    ctx = current_trace_context()
    return (ctx.trace_id if ctx else None, os.getpid())


BACKENDS = ["thread:2"] + (["process:2"] if _FORK else [])


class TestPoolPropagation:
    @pytest.mark.parametrize("spec", BACKENDS)
    def test_workers_see_the_request_context(self, spec):
        config = parse_parallel_spec(spec)
        ctx = TraceContext.new()
        tracer = enable_tracing()
        try:
            with use_trace_context(ctx):
                out = map_shards(
                    "test",
                    _shard_context,
                    list(range(4)),
                    config=config,
                    workers=2,
                )
        finally:
            disable_tracing()
        assert [tid for tid, _ in out] == [ctx.trace_id] * 4
        if spec.startswith("process"):
            assert any(pid != os.getpid() for _, pid in out)
        # The reconstructed shard spans stitch under parallel.map with the
        # worker-allocated identity.
        (root,) = tracer.roots
        assert root.name == "parallel.map"
        shards = [s for s in root.children if s.name == "shard"]
        assert len(shards) == 4
        assert all(s.trace_id == ctx.trace_id for s in shards)
        assert all(s.parent_span_id == root.span_id for s in shards)
        assert all(s.span_id for s in shards)

    def test_no_context_means_no_shipping(self):
        config = parse_parallel_spec("thread:2")
        out = map_shards(
            "test", _shard_context, [1, 2], config=config, workers=2
        )
        assert [tid for tid, _ in out] == [None, None]


# -- serving header contract -------------------------------------------------


@pytest.fixture
def service(tmp_path, flight_routes):
    store = SnapshotStore(tmp_path / "snapshots")
    cube = CompressedSkylineCube.build(flight_routes)
    store.publish("routes", flight_routes, cube)
    sink = TraceSink(tmp_path / "traces", keep_probability=0.0)
    return CubeService(
        store,
        reload_interval=0,
        admission=AdmissionController(max_concurrency=1, queue_limit=0),
        trace_sink=sink,
    )


class TestServeTraceHeaders:
    def test_fresh_trace_id_echoed(self, service):
        status, _, headers = service.handle_http(
            "GET", "/v1/skyline", {"subspace": ["price"]}, {}
        )
        assert status == 200
        assert len(headers["x-repro-trace-id"]) == 32

    def test_inbound_traceparent_continued(self, service):
        inbound = {"traceparent": f"00-{TID}-00f067aa0ba902b7-01"}
        _, _, headers = service.handle_http(
            "GET", "/v1/skyline", {"subspace": ["price"]}, {}, inbound
        )
        assert headers["x-repro-trace-id"] == TID

    def test_malformed_traceparent_mints_fresh(self, service):
        _, _, headers = service.handle_http(
            "GET", "/v1/skyline", {"subspace": ["price"]}, {},
            {"traceparent": "ff-bogus"},
        )
        assert headers["x-repro-trace-id"] != TID
        assert len(headers["x-repro-trace-id"]) == 32

    def test_shed_response_carries_trace_id_and_is_kept(self, service):
        with service.admission.admit():  # occupy the only slot
            status, payload, headers = service.handle_http(
                "GET", "/v1/skyline", {"subspace": ["price"]}, {},
                {"traceparent": f"00-{TID}-00f067aa0ba902b7-01"},
            )
        assert status == 503
        assert payload["error"] == "overloaded"
        assert headers["x-repro-trace-id"] == TID
        # Sheds are always kept by tail sampling, keep_probability=0 or not.
        assert load_trace(service.trace_sink.root, TID)

    def test_fast_success_dropped_at_zero_probability(self, service):
        _, _, headers = service.handle_http(
            "GET", "/v1/skyline", {"subspace": ["price"]}, {}
        )
        assert not load_trace(
            service.trace_sink.root, headers["x-repro-trace-id"]
        )

    def test_error_response_kept(self, service):
        status, _, headers = service.handle_http(
            "GET", "/v1/skyline", {"subspace": ["price"]}, {},
            {"traceparent": f"00-{TID}-00f067aa0ba902b7-01"},
        )
        assert status == 200  # baseline: this id would normally be dropped
        status, _, headers = service.handle_http(
            "GET", "/v1/nope", {}, {},
            {"traceparent": f"00-{TID}-00f067aa0ba902b7-01"},
        )
        assert status == 404  # unknown endpoint is a 4xx, not kept
        assert not load_trace(service.trace_sink.root, TID)


# -- trace sink --------------------------------------------------------------


def _span(name, start, end, span_id, parent=0, **attrs):
    sp = Span(name=name, start_ns=start, end_ns=end, attributes=attrs)
    sp.span_id = span_id
    sp.parent_span_id = parent
    sp.trace_id = TID
    return sp


class TestTraceSink:
    def test_keep_rules(self, tmp_path):
        sink = TraceSink(
            tmp_path, slow_threshold_s=0.1, keep_probability=0.0
        )
        assert sink.should_keep(TID, seconds=0.01) is False
        assert sink.should_keep(TID, seconds=0.5) is True
        assert sink.should_keep(TID, seconds=0.01, error=True) is True
        assert sink.should_keep(TID, seconds=0.01, shed=True) is True
        assert TraceSink(tmp_path, keep_probability=1.0).should_keep(
            TID, seconds=0.0
        )

    def test_offer_and_load_round_trip(self, tmp_path):
        sink = TraceSink(tmp_path, keep_probability=1.0)
        root = _span("serve.request", 0, 5_000_000, 10, endpoint="/v1/x")
        root.children.append(_span("serve.query", 1, 4_000_000, 11, 10))
        assert sink.offer_span(root, source="server") is True
        records = load_trace(tmp_path, TID)
        assert [r["name"] for r in records] == [
            "serve.request",
            "serve.query",
        ]
        assert all(r["trace_id"] == TID for r in records)

    def test_offer_rejects_unsafe_ids(self, tmp_path):
        sink = TraceSink(tmp_path, keep_probability=1.0)
        assert sink.offer("../evil", [{"span_id": 1}]) is False
        assert sink.offer("short", [{"span_id": 1}]) is False
        assert sink.dropped == 2

    def test_spanless_root_dropped(self, tmp_path):
        sink = TraceSink(tmp_path, keep_probability=1.0)
        sp = Span(name="no-trace", start_ns=0, end_ns=1)
        assert sink.offer_span(sp) is False

    def test_max_traces_bound(self, tmp_path):
        sink = TraceSink(tmp_path, keep_probability=1.0, max_traces=1)
        first = "a" * 32
        second = "b" * 32
        assert sink.offer(first, [{"span_id": 1, "name": "x"}]) is True
        assert sink.offer(second, [{"span_id": 2, "name": "y"}]) is False
        # An existing trace still accepts late records (worker subtrees).
        assert sink.offer(first, [{"span_id": 3, "name": "z"}]) is True
        assert len(load_trace(tmp_path, first)) == 2

    def test_torn_tail_line_skipped(self, tmp_path):
        sink = TraceSink(tmp_path, keep_probability=1.0)
        sink.offer(TID, [{"span_id": 1, "name": "ok"}])
        with (tmp_path / f"{TID}.ndjson").open("a") as fh:
            fh.write('{"span_id": 2, "name": "torn')
        assert [r["name"] for r in load_trace(tmp_path, TID)] == ["ok"]

    def test_list_traces_newest_first(self, tmp_path):
        sink = TraceSink(tmp_path, keep_probability=1.0)
        a, b = "a" * 32, "b" * 32
        sink.offer(a, [{"span_id": 1, "name": "x", "start_ns": 0}])
        sink.offer(b, [{"span_id": 2, "name": "y", "start_ns": 0}])
        os.utime(tmp_path / f"{b}.ndjson", (2_000_000_000, 2_000_000_000))
        summaries = list_traces(tmp_path)
        assert [s["trace_id"] for s in summaries] == [b, a]


class TestAssembleAndCriticalPath:
    def test_cross_process_records_stitch(self):
        ms = 1_000_000
        server = _span("serve.request", 0, 10 * ms, 1, endpoint="/v1/x")
        client = _span("client.request", 0, 12 * ms, 2)
        server.parent_span_id = 2
        records = span_records(client, trace_id=TID, source="client", pid=7)
        records += span_records(server, trace_id=TID, source="server", pid=8)
        roots = assemble_trace(records)
        assert len(roots) == 1
        assert roots[0].span.name == "client.request"
        assert roots[0].source == "client"
        assert [c.span.name for c in roots[0].children] == ["serve.request"]
        assert roots[0].children[0].pid == 8

    def test_duplicate_offers_deduplicate(self):
        sp = _span("serve.request", 0, 5, 1)
        records = span_records(sp, trace_id=TID) + span_records(
            sp, trace_id=TID
        )
        assert len(assemble_trace(records)) == 1

    def test_orphan_becomes_root(self):
        records = span_records(
            _span("shard", 0, 5, 3, parent=999), trace_id=TID
        )
        roots = assemble_trace(records)
        assert len(roots) == 1

    def test_attribution_partitions_the_root_duration(self):
        ms = 1_000_000
        root = _span("serve.request", 0, 100 * ms, 1)
        par = _span("parallel.map", 10 * ms, 90 * ms, 2, 1)
        # Two shards overlapping in wall-clock: their split must not
        # double-count the overlapped 60ms.
        par.children.append(_span("shard", 10 * ms, 80 * ms, 3, 2))
        par.children.append(_span("shard", 20 * ms, 90 * ms, 4, 2))
        root.children.append(par)
        roots = assemble_trace(span_records(root, trace_id=TID))
        out = critical_path(roots)
        assert out["total_s"] == pytest.approx(0.1)
        assert out["attributed_s"] == pytest.approx(out["total_s"])
        assert out["phases"]["kernel"] == pytest.approx(0.08)
        assert out["phases"]["serve"] == pytest.approx(0.02)

    def test_worker_pid_attribute_wins(self):
        sp = _span("shard", 0, 5, 3, pid=4242)
        (rec,) = span_records(sp, trace_id=TID, pid=1)
        assert rec["pid"] == 4242


# -- OpenMetrics exemplars ---------------------------------------------------


class TestOpenMetrics:
    def test_negotiation(self):
        om = "application/openmetrics-text; version=1.0.0"
        content_type, render = negotiate_exposition(om)
        assert content_type == OPENMETRICS_CONTENT_TYPE
        assert render is render_openmetrics
        for accept in (None, "", "*/*", "text/plain"):
            content_type, render = negotiate_exposition(accept)
            assert content_type == PROMETHEUS_CONTENT_TYPE
            assert render is render_prometheus

    def test_exemplar_rendered_on_bucket(self):
        hist = registry().histogram("serve.request_seconds")
        hist.observe(0.004)
        hist.observe(0.004, trace_id=TID)
        text = render_openmetrics(registry())
        assert f'# {{trace_id="{TID}"}} 0.004' in text
        assert text.endswith("# EOF\n")

    def test_counter_family_drops_total_suffix(self):
        registry().counter("serve.admitted").inc()
        text = render_openmetrics(registry())
        assert "# TYPE repro_serve_admitted counter" in text
        assert "repro_serve_admitted_total 1" in text

    def test_legacy_exposition_has_no_exemplars(self):
        hist = registry().histogram("serve.request_seconds")
        hist.observe(0.004, trace_id=TID)
        text = render_prometheus(registry())
        assert "trace_id" not in text
        assert "# EOF" not in text


# -- slow-query log correlation ----------------------------------------------


class TestSlowlogTraceIds:
    def test_entries_carry_trace_id_and_endpoint(self, service):
        configure_slow_query_log(capacity=16, threshold=0.0)
        try:
            service.handle_http(
                "GET", "/v1/skyline", {"subspace": ["price"]}, {},
                {"traceparent": f"00-{TID}-00f067aa0ba902b7-01"},
            )
            entries = slow_query_log().entries()
            assert entries
            worst = entries[0]
            assert worst.trace_id == TID
            assert worst.endpoint == "/v1/skyline"
            rendered = slow_query_log().render()
            assert f"trace_id={TID}" in rendered
        finally:
            configure_slow_query_log(capacity=16, threshold=0.0)
            slow_query_log().clear()


# -- loadtest report: slowest requests ---------------------------------------


def _record(kind, seconds, trace_id, **kw):
    return RequestRecord(
        kind=kind,
        status=kw.pop("status", 200),
        seconds=seconds,
        service_seconds=seconds,
        cube_version=kw.pop("cube_version", "demo@v1"),
        trace_id=trace_id,
        **kw,
    )


class TestReportSlowest:
    def test_worst_first_with_trace_ids(self):
        records = [
            _record("skyline", 0.001 * i, f"{i:032x}") for i in range(1, 8)
        ]
        top = slowest(records)
        assert len(top) == 5
        assert [t["seconds"] for t in top] == sorted(
            (t["seconds"] for t in top), reverse=True
        )
        assert top[0]["trace_id"] == f"{7:032x}"
        assert top[0]["cube_version"] == "demo@v1"

    def test_summarize_renders_slow_lines(self):
        config = LoadtestConfig(duration_seconds=1.0, rate_rps=1.0)
        result = LoadtestResult(
            config=config,
            records=[_record("skyline", 0.25, "c" * 32)],
            slo_report=SLOEngine(default_serving_slos()).report(),
            wall_seconds=1.0,
            scheduled=1,
            max_lag_seconds=0.0,
        )
        report = summarize(result)
        assert report.endpoints[0].slowest[0]["trace_id"] == "c" * 32
        text = report.render()
        assert "trace=" + "c" * 32 in text
        assert "version=demo@v1" in text
        payload = report.to_dict()
        assert payload["endpoints"][0]["slowest"][0]["trace_id"] == "c" * 32


# -- repro trace CLI ---------------------------------------------------------


class TestTraceCLI:
    @pytest.fixture
    def sink_dir(self, tmp_path):
        sink = TraceSink(tmp_path / "traces", keep_probability=1.0)
        ms = 1_000_000
        root = _span(
            "client.request", 0, 20 * ms, 1, endpoint="/v1/skyline"
        )
        serve = _span("serve.request", 2 * ms, 18 * ms, 2, 1)
        serve.children.append(_span("serve.admission.wait", 2 * ms, 3 * ms, 3, 2))
        root.children.append(serve)
        sink.offer_span(root, source="client", seconds=0.02)
        return tmp_path / "traces"

    def test_ls(self, sink_dir, capsys):
        assert main(["trace", "ls", "--trace-dir", str(sink_dir)]) == 0
        out = capsys.readouterr().out
        assert TID in out
        assert "/v1/skyline" in out

    def test_show(self, sink_dir, capsys):
        assert (
            main(["trace", "show", TID, "--trace-dir", str(sink_dir)]) == 0
        )
        out = capsys.readouterr().out
        assert "client.request" in out
        assert "serve.admission.wait" in out

    def test_critical_path(self, sink_dir, capsys):
        rc = main(
            ["trace", "critical-path", TID, "--trace-dir", str(sink_dir)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "admission" in out
        assert "20.00 ms total" in out

    def test_critical_path_json(self, sink_dir, capsys):
        rc = main(
            [
                "trace",
                "critical-path",
                TID,
                "--trace-dir",
                str(sink_dir),
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_s"] == pytest.approx(0.02)
        assert payload["attributed_s"] == pytest.approx(0.02)

    def test_unknown_trace_fails(self, sink_dir, capsys):
        rc = main(
            ["trace", "show", "d" * 32, "--trace-dir", str(sink_dir)]
        )
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_missing_sink_fails(self, tmp_path, capsys):
        rc = main(
            ["trace", "ls", "--trace-dir", str(tmp_path / "nope")]
        )
        assert rc == 2
        assert "no trace sink" in capsys.readouterr().err

    def test_id_required_for_show(self, sink_dir, capsys):
        rc = main(["trace", "show", "--trace-dir", str(sink_dir)])
        assert rc == 2
        assert "requires a trace id" in capsys.readouterr().err
