"""Tests for the compressed-cube query layer (Q1 / Q2 / Q3)."""

import pytest
from hypothesis import given, settings

from repro.core.stellar import stellar
from repro.core.types import Dataset
from repro.cube import CompressedSkylineCube
from repro.cube.compressed import MembershipInterval
from repro.skyline import compute_skyline

from .conftest import tiny_int_datasets


def build(ds: Dataset) -> CompressedSkylineCube:
    return CompressedSkylineCube(ds, stellar(ds).groups)


class TestBuild:
    def test_build_stellar(self, running_example):
        cube = CompressedSkylineCube.build(running_example)
        assert len(cube.groups) == 8

    def test_build_skyey(self, running_example):
        cube = CompressedSkylineCube.build(running_example, algorithm="skyey")
        assert len(cube.groups) == 8

    def test_build_unknown(self, running_example):
        with pytest.raises(ValueError, match="unknown cube algorithm"):
            CompressedSkylineCube.build(running_example, algorithm="magic")


class TestQ1SubspaceSkyline:
    def test_matches_direct_on_running_example(self, running_example):
        cube = build(running_example)
        for subspace in range(1, 16):
            assert cube.skyline_of(subspace) == compute_skyline(
                running_example, subspace, algorithm="brute"
            )

    def test_groups_in(self, running_example):
        cube = build(running_example)
        groups = cube.groups_in(0b0010)  # subspace B
        assert {g.members for g in groups} == {frozenset({2, 3, 4})}

    def test_empty_subspace_rejected(self, running_example):
        cube = build(running_example)
        with pytest.raises(ValueError, match="empty subspace"):
            cube.skyline_of(0)

    def test_out_of_range_subspace_rejected(self, running_example):
        cube = build(running_example)
        with pytest.raises(ValueError, match="beyond"):
            cube.skyline_of(1 << 9)

    @settings(max_examples=60, deadline=None)
    @given(tiny_int_datasets(max_objects=10, max_dims=4, max_value=3))
    def test_q1_matches_direct_everywhere(self, ds: Dataset):
        cube = build(ds)
        for subspace in range(1, 1 << ds.n_dims):
            assert cube.skyline_of(subspace) == compute_skyline(
                ds, subspace, algorithm="brute"
            )


class TestQ2Membership:
    def test_intervals_p3(self, running_example):
        cube = build(running_example)
        intervals = cube.membership_intervals(2)  # P3
        covered = set()
        for iv in intervals:
            assert isinstance(iv, MembershipInterval)
            covered.update(
                s for s in range(1, 16) if s in iv
            )
        assert covered == {0b0010, 0b1000, 0b1010, 0b1110}

    def test_interval_size(self):
        iv = MembershipInterval(lower=0b001, upper=0b111)
        assert iv.size() == 4
        assert 0b011 in iv
        assert 0b010 not in iv

    def test_is_skyline_in(self, running_example):
        cube = build(running_example)
        assert cube.is_skyline_in(2, 0b1010)       # P3 in BD
        assert not cube.is_skyline_in(2, 0b1111)   # P3 not in ABCD
        assert not cube.is_skyline_in(0, 0b0001)   # P1 nowhere

    def test_object_out_of_range(self, running_example):
        cube = build(running_example)
        with pytest.raises(ValueError, match="out of range"):
            cube.is_skyline_in(99, 1)

    def test_groups_of(self, running_example):
        cube = build(running_example)
        assert {g.key for g in cube.groups_of(2)} == {
            ((2, 4), 0b1110),
            ((1, 2, 4), 0b1000),
            ((2, 3, 4), 0b0010),
        }

    @settings(max_examples=50, deadline=None)
    @given(tiny_int_datasets(max_objects=10, max_dims=4, max_value=3))
    def test_q2_matches_direct_everywhere(self, ds: Dataset):
        cube = build(ds)
        for obj in range(ds.n_objects):
            expected = [
                s
                for s in range(1, 1 << ds.n_dims)
                if obj in compute_skyline(ds, s, algorithm="brute")
            ]
            assert cube.membership_subspaces(obj) == expected
            for s in range(1, 1 << ds.n_dims):
                assert cube.is_skyline_in(obj, s) == (s in set(expected))


class TestQ3Navigation:
    def test_drill_down(self, running_example):
        cube = build(running_example)
        steps = cube.drill_down(0b0010)  # from B
        assert [(d, s) for d, s, _ in steps] == [
            (0, 0b0011), (2, 0b0110), (3, 0b1010)
        ]
        by_subspace = {s: sky for _, s, sky in steps}
        assert by_subspace[0b1010] == [2, 4]  # BD: P3, P5

    def test_roll_up(self, running_example):
        cube = build(running_example)
        steps = cube.roll_up(0b1010)  # from BD
        assert {s for _, s, _ in steps} == {0b0010, 0b1000}

    def test_roll_up_of_single_dim_is_empty(self, running_example):
        cube = build(running_example)
        assert cube.roll_up(0b0001) == []

    def test_drill_down_full_space_is_empty(self, running_example):
        cube = build(running_example)
        assert cube.drill_down(0b1111) == []


class TestWhyNot:
    def test_positive_answer(self, running_example):
        cube = build(running_example)
        answer = cube.why_not(2, 0b1010)  # P3 in BD
        assert answer.is_skyline
        assert answer.group.members == frozenset({2, 4})
        assert answer.witness_decisive == (0b1010,)
        assert answer.dominators == ()
        text = answer.explain(running_example)
        assert "P3 IS in the skyline of BD" in text

    def test_negative_answer_lists_dominators(self, running_example):
        cube = build(running_example)
        answer = cube.why_not(0, 0b0011)  # P1 in AB
        assert not answer.is_skyline
        assert answer.group is None
        assert set(answer.dominators) == {1, 2, 4}
        assert "NOT in the skyline" in answer.explain(running_example)

    def test_dominators_truncated_in_text(self):
        ds = Dataset.from_rows([[i, i] for i in range(10)][::-1])
        cube = build(ds)
        answer = cube.why_not(0, 0b11)  # the worst point, 9 dominators
        assert len(answer.dominators) == 9
        assert "and 4 more" in answer.explain(ds)

    def test_validation(self, running_example):
        cube = build(running_example)
        with pytest.raises(ValueError):
            cube.why_not(0, 0)
        with pytest.raises(ValueError):
            cube.why_not(99, 1)

    @settings(max_examples=30, deadline=None)
    @given(tiny_int_datasets(max_objects=8, max_dims=3, max_value=3))
    def test_consistent_with_membership(self, ds: Dataset):
        cube = build(ds)
        for obj in range(ds.n_objects):
            for subspace in range(1, 1 << ds.n_dims):
                answer = cube.why_not(obj, subspace)
                assert answer.is_skyline == cube.is_skyline_in(obj, subspace)
                if not answer.is_skyline:
                    assert answer.dominators, "non-members must have dominators"
                    m = ds.minimized
                    for d in answer.dominators:
                        from repro.core.dominance import dominates

                        assert dominates(m, d, obj, subspace)


class TestMaterialize:
    def test_running_example_matches_skycube(self, running_example):
        from repro.skycube import skycube_naive

        cube = build(running_example)
        assert cube.materialize() == skycube_naive(running_example)

    @settings(max_examples=40, deadline=None)
    @given(tiny_int_datasets(max_objects=10, max_dims=4, max_value=3))
    def test_materialize_matches_direct(self, ds: Dataset):
        from repro.skycube import skycube_naive

        cube = build(ds)
        assert cube.materialize() == skycube_naive(ds)


class TestSummary:
    def test_running_example_summary(self, running_example):
        cube = build(running_example)
        summary = cube.summary()
        assert summary.n_groups == 8
        assert summary.n_decisive_subspaces == 9  # P2 has 2, others 1 each
        assert summary.n_subspace_skyline_objects == sum(
            len(compute_skyline(running_example, s, algorithm="brute"))
            for s in range(1, 16)
        )
        assert summary.compression_ratio == pytest.approx(
            summary.n_subspace_skyline_objects / 8
        )
