"""Tests for the skyline-group lattice and the Theorem 2 quotient check."""

from hypothesis import given, settings

from repro.core.lattice import (
    SkylineGroupLattice,
    quotient_map,
    seed_groups_as_skyline_groups,
    verify_quotient_for,
)
from repro.core.stellar import stellar
from repro.core.types import Dataset

from .conftest import tiny_int_datasets


class TestHasseDiagram:
    def test_running_example_structure(self, running_example):
        result = stellar(running_example)
        lattice = SkylineGroupLattice.build(result.groups)
        by_key = {g.key: i for i, g in enumerate(lattice.groups)}
        # singletons are roots
        roots = set(lattice.roots())
        assert by_key[((1,), 0b1111)] in roots  # P2
        assert by_key[((3,), 0b1111)] in roots  # P4
        assert by_key[((4,), 0b1111)] in roots  # P5
        # (P3P5, BCD) covers (P5, ABCD): P5 is the only strict subset
        child = by_key[((2, 4), 0b1110)]
        assert lattice.parents[child] == [by_key[((4,), 0b1111)]]
        # (P2P3P5, D) is covered by (P2P5, AD) and (P3P5, BCD)
        node = by_key[((1, 2, 4), 0b1000)]
        assert set(lattice.parents[node]) == {
            by_key[((1, 4), 0b1001)],
            by_key[((2, 4), 0b1110)],
        }

    def test_edges_respect_order(self, running_example):
        result = stellar(running_example)
        lattice = SkylineGroupLattice.build(result.groups)
        for i, kids in enumerate(lattice.children):
            for j in kids:
                assert lattice.groups[i].members < lattice.groups[j].members
                assert lattice.groups[j].subspace & ~lattice.groups[i].subspace == 0

    def test_meet_and_join(self, running_example):
        result = stellar(running_example)
        lattice = SkylineGroupLattice.build(result.groups)
        by_key = {g.key: i for i, g in enumerate(lattice.groups)}
        p2 = by_key[((1,), 0b1111)]
        p5 = by_key[((4,), 0b1111)]
        # meet of P2 and P5 is the smallest group containing both: P2P5
        assert lattice.meet(p2, p5) == by_key[((1, 4), 0b1001)]
        # join of P2P5 and P3P5 is a group containing their intersection {P5}
        a = by_key[((1, 4), 0b1001)]
        b = by_key[((2, 4), 0b1110)]
        assert lattice.join(a, b) == p5
        # meet of two maximal disjoint-ish groups may fall to virtual zero
        p2p4 = by_key[((1, 3), 0b0100)]
        p3p5 = by_key[((2, 4), 0b1110)]
        assert lattice.meet(p2p4, p3p5) is None

    def test_to_dot(self, running_example):
        result = stellar(running_example)
        lattice = SkylineGroupLattice.build(result.groups)
        dot = lattice.to_dot(running_example)
        assert dot.startswith("digraph")
        assert "P2P5" in dot
        assert dot.count("->") == sum(len(c) for c in lattice.children)


class TestQuotient:
    def test_running_example_report(self, running_example):
        result = stellar(running_example)
        report = verify_quotient_for(running_example, result)
        assert report.is_quotient
        assert report.n_full_groups == 8
        assert report.n_seed_groups == 6
        # two seed groups were split/extended: fibers (2, 2, 1, 1, 1, 1)
        assert report.fiber_sizes == (2, 2, 1, 1, 1, 1)

    def test_quotient_map_positions(self, running_example):
        result = stellar(running_example)
        seed_groups = seed_groups_as_skyline_groups(running_example, result)
        mapping = quotient_map(result.groups, seed_groups, result.seeds)
        assert set(mapping) == set(range(len(result.groups)))
        assert all(v is not None for v in mapping.values())
        # (P3P4P5, B) maps to the seed group (P4P5, B)
        idx_full = next(
            i for i, g in enumerate(result.groups)
            if g.key == ((2, 3, 4), 0b0010)
        )
        assert seed_groups[mapping[idx_full]].members == frozenset({3, 4})

    @settings(max_examples=40, deadline=None)
    @given(tiny_int_datasets(max_objects=9, max_dims=4, max_value=3))
    def test_quotient_on_random_data(self, ds: Dataset):
        report = verify_quotient_for(ds, stellar(ds))
        assert report.is_quotient
