"""Tests for the SkyCube substrate (all-subspace skylines and counts)."""

from hypothesis import given, settings

from repro.core.stellar import stellar
from repro.core.types import Dataset
from repro.cube import CompressedSkylineCube
from repro.skycube import (
    cube_counts,
    skycube_naive,
    skycube_shared,
    skycube_topdown,
)
from repro.skycube.counts import subspace_skyline_object_count
from repro.skyline import compute_skyline

from .conftest import tiny_int_datasets


class TestNaive:
    def test_running_example(self, running_example):
        cube = skycube_naive(running_example)
        assert len(cube) == 15
        assert cube[0b1111] == [1, 3, 4]  # seeds P2 P4 P5
        assert cube[0b0010] == [2, 3, 4]  # B: value 4 shared by P3 P4 P5
        assert cube[0b1000] == [1, 2, 4]  # D: value 3 shared by P2 P3 P5

    def test_empty(self):
        ds = Dataset.from_rows([], names=("A",))
        assert skycube_naive(ds) == {1: []}


class TestShared:
    def test_matches_naive_running_example(self, running_example):
        assert skycube_shared(running_example) == skycube_naive(running_example)

    def test_empty_dataset(self):
        ds = Dataset.from_rows([], names=("A", "B"))
        assert skycube_shared(ds) == {}

    @settings(max_examples=50, deadline=None)
    @given(tiny_int_datasets(max_objects=12, max_dims=4, max_value=3))
    def test_matches_naive(self, ds: Dataset):
        assert skycube_shared(ds) == skycube_naive(ds)

    @settings(max_examples=30, deadline=None)
    @given(tiny_int_datasets(max_objects=10, max_dims=4, max_value=3))
    def test_every_subspace_matches_direct_query(self, ds: Dataset):
        cube = skycube_shared(ds)
        assert set(cube) == set(range(1, 1 << ds.n_dims))
        for subspace, skyline in cube.items():
            assert skyline == compute_skyline(ds, subspace, algorithm="brute")


class TestTopDown:
    def test_matches_naive_running_example(self, running_example):
        assert skycube_topdown(running_example) == skycube_naive(running_example)

    def test_empty_dataset(self):
        ds = Dataset.from_rows([], names=("A", "B"))
        assert skycube_topdown(ds) == {}

    def test_heavy_ties(self):
        """Ties are where the coincidence-set extension earns its keep."""
        ds = Dataset.from_rows(
            [[0, 2, 2], [1, 1, 2], [2, 0, 2], [1, 1, 1], [2, 2, 0], [0, 2, 2]]
        )
        assert skycube_topdown(ds) == skycube_naive(ds)

    def test_example1_exclusive_point(self, example1):
        """Object d is skyline only in XY -- the case the candidate
        containment must not lose when descending to children."""
        cube = skycube_topdown(example1)
        assert cube == skycube_naive(example1)
        assert 3 in cube[0b11] and 3 not in cube[0b01] and 3 not in cube[0b10]

    @settings(max_examples=60, deadline=None)
    @given(tiny_int_datasets(max_objects=12, max_dims=4, max_value=3))
    def test_matches_naive(self, ds: Dataset):
        assert skycube_topdown(ds) == skycube_naive(ds)

    def test_matches_shared_at_scale(self):
        from repro.data import make_dataset

        ds = make_dataset("independent", 800, 4, seed=3, digits=2)
        assert skycube_topdown(ds) == skycube_shared(ds)


class TestCounts:
    def test_cube_counts_running_example(self, running_example):
        counts = cube_counts(running_example)
        assert counts.n_objects == 5
        assert counts.n_dims == 4
        assert counts.n_full_space_skyline == 3
        assert counts.n_skyline_groups == 8
        expected_total = sum(
            len(v) for v in skycube_naive(running_example).values()
        )
        assert counts.n_subspace_skyline_objects == expected_total
        assert counts.compression_ratio == expected_total / 8

    def test_compression_ratio_nan_when_empty(self):
        ds = Dataset.from_rows([], names=("A",))
        counts = cube_counts(ds)
        assert counts.n_skyline_groups == 0
        assert counts.compression_ratio != counts.compression_ratio  # NaN

    @settings(max_examples=40, deadline=None)
    @given(tiny_int_datasets(max_objects=10, max_dims=4, max_value=3))
    def test_summary_matches_skycube_count(self, ds: Dataset):
        """The compressed cube's interval-based SkyCube size is exact."""
        result = stellar(ds)
        cube = CompressedSkylineCube(ds, result.groups)
        assert (
            cube.summary().n_subspace_skyline_objects
            == subspace_skyline_object_count(ds)
        )
