"""Tests for the synthetic data generators."""

import numpy as np
import pytest

from repro.data import (
    generate_anticorrelated,
    generate_correlated,
    generate_independent,
    make_dataset,
    truncate_decimals,
)
from repro.skyline import compute_skyline


class TestShapesAndRanges:
    @pytest.mark.parametrize(
        "generator",
        [generate_correlated, generate_independent, generate_anticorrelated],
    )
    def test_shape_and_range(self, generator):
        values = generator(500, 5, seed=3)
        assert values.shape == (500, 5)
        assert np.all(values >= 0.0)
        assert np.all(values <= 1.0)

    @pytest.mark.parametrize(
        "generator",
        [generate_correlated, generate_independent, generate_anticorrelated],
    )
    def test_zero_objects(self, generator):
        assert generator(0, 3, seed=1).shape == (0, 3)

    @pytest.mark.parametrize(
        "generator",
        [generate_correlated, generate_independent, generate_anticorrelated],
    )
    def test_single_dimension(self, generator):
        assert generator(10, 1, seed=1).shape == (10, 1)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_independent(-1, 2)
        with pytest.raises(ValueError):
            generate_independent(5, 0)

    @pytest.mark.parametrize(
        "generator",
        [generate_correlated, generate_independent, generate_anticorrelated],
    )
    def test_deterministic_by_seed(self, generator):
        a = generator(50, 3, seed=7)
        b = generator(50, 3, seed=7)
        c = generator(50, 3, seed=8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestDistributionCharacter:
    def test_correlation_signs(self):
        corr = generate_correlated(5000, 2, seed=0)
        anti = generate_anticorrelated(5000, 2, seed=0)
        indep = generate_independent(5000, 2, seed=0)
        r_corr = np.corrcoef(corr[:, 0], corr[:, 1])[0, 1]
        r_anti = np.corrcoef(anti[:, 0], anti[:, 1])[0, 1]
        r_indep = np.corrcoef(indep[:, 0], indep[:, 1])[0, 1]
        assert r_corr > 0.5
        assert r_anti < -0.5
        assert abs(r_indep) < 0.1

    def test_skyline_size_ordering(self):
        """The defining property: |sky(corr)| << |sky(indep)| << |sky(anti)|."""
        n, d = 3000, 4
        sizes = {}
        for name in ("correlated", "independent", "anticorrelated"):
            ds = make_dataset(name, n, d, seed=5)
            sizes[name] = len(compute_skyline(ds))
        assert sizes["correlated"] < sizes["independent"] < sizes["anticorrelated"]
        assert sizes["anticorrelated"] > 20 * sizes["correlated"]


class TestTruncation:
    def test_truncates_not_rounds(self):
        values = np.array([[0.123456, 0.999999]])
        got = truncate_decimals(values, digits=4)
        assert got[0, 0] == pytest.approx(0.1234)
        assert got[0, 1] == pytest.approx(0.9999)

    def test_creates_coincidence(self):
        values = generate_independent(2000, 2, seed=1)
        truncated = truncate_decimals(values, digits=2)
        assert len(np.unique(truncated[:, 0])) < 2000
        assert len(np.unique(values[:, 0])) == 2000

    def test_negative_digits_rejected(self):
        with pytest.raises(ValueError):
            truncate_decimals(np.zeros((1, 1)), digits=-1)


class TestMakeDataset:
    def test_aliases(self):
        for alias in ("equal", "uniform", "anti", "corr", "anti-correlated"):
            ds = make_dataset(alias, 10, 2, seed=0)
            assert ds.n_objects == 10

    def test_unknown_distribution(self):
        with pytest.raises(ValueError, match="unknown distribution"):
            make_dataset("zipfian", 10, 2)

    def test_digits_none_disables_truncation(self):
        ds = make_dataset("independent", 100, 1, seed=0, digits=None)
        assert len(np.unique(ds.values)) == 100

    def test_default_truncation_applied(self):
        ds = make_dataset("independent", 100, 1, seed=0)
        scaled = ds.values * 10_000
        assert np.allclose(scaled, np.round(scaled))
