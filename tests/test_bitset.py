"""Unit and property tests for the dimension bit-set machinery."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import bitset


class TestBasics:
    def test_bit(self):
        assert bitset.bit(0) == 1
        assert bitset.bit(3) == 8

    def test_bit_negative_rejected(self):
        with pytest.raises(ValueError):
            bitset.bit(-1)

    def test_full_mask(self):
        assert bitset.full_mask(0) == 0
        assert bitset.full_mask(1) == 1
        assert bitset.full_mask(4) == 0b1111

    def test_full_mask_negative_rejected(self):
        with pytest.raises(ValueError):
            bitset.full_mask(-2)

    def test_iter_bits(self):
        assert list(bitset.iter_bits(0b1011)) == [0, 1, 3]
        assert list(bitset.iter_bits(0)) == []

    def test_bit_list(self):
        assert bitset.bit_list(0b10100) == [2, 4]

    def test_popcount(self):
        assert bitset.popcount(0) == 0
        assert bitset.popcount(0b1011) == 3

    def test_mask_of_dims(self):
        assert bitset.mask_of_dims([0, 2]) == 0b101
        assert bitset.mask_of_dims([]) == 0

    def test_subset_relations(self):
        assert bitset.is_subset(0b001, 0b011)
        assert bitset.is_subset(0b011, 0b011)
        assert not bitset.is_subset(0b100, 0b011)
        assert bitset.is_proper_subset(0b001, 0b011)
        assert not bitset.is_proper_subset(0b011, 0b011)


class TestEnumeration:
    def test_iter_subsets_counts(self):
        subs = list(bitset.iter_subsets(0b101))
        assert sorted(subs) == [0b000, 0b001, 0b100, 0b101]

    def test_iter_nonempty_subsets(self):
        assert sorted(bitset.iter_nonempty_subsets(0b11)) == [0b01, 0b10, 0b11]

    def test_iter_supersets(self):
        sups = sorted(bitset.iter_supersets(0b001, 0b011))
        assert sups == [0b001, 0b011]

    def test_iter_supersets_requires_containment(self):
        with pytest.raises(ValueError):
            list(bitset.iter_supersets(0b100, 0b011))

    def test_iter_all_subspaces(self):
        assert list(bitset.iter_all_subspaces(2)) == [1, 2, 3]
        assert list(bitset.iter_all_subspaces(0)) == []

    @given(st.integers(min_value=0, max_value=255))
    def test_subset_enumeration_is_exhaustive(self, mask):
        subs = list(bitset.iter_subsets(mask))
        assert len(subs) == 1 << bitset.popcount(mask)
        assert len(set(subs)) == len(subs)
        assert all(bitset.is_subset(s, mask) for s in subs)


class TestAntichains:
    def test_minimal_masks(self):
        assert bitset.minimal_masks([0b11, 0b01, 0b10]) == [0b01, 0b10]
        assert bitset.minimal_masks([0b111, 0b11]) == [0b11]

    def test_minimal_masks_removes_duplicates(self):
        assert bitset.minimal_masks([0b1, 0b1]) == [0b1]

    def test_maximal_masks(self):
        assert bitset.maximal_masks([0b11, 0b01, 0b10]) == [0b11]

    @given(st.lists(st.integers(min_value=1, max_value=63), min_size=1, max_size=12))
    def test_minimal_masks_is_antichain_and_covers(self, masks):
        result = bitset.minimal_masks(masks)
        # antichain: no element contains another
        for a in result:
            for b in result:
                if a != b:
                    assert not bitset.is_subset(a, b)
        # every input mask contains some minimal element
        for m in masks:
            assert any(bitset.is_subset(r, m) for r in result)
        # every result element is an input element
        assert set(result) <= set(masks)


class TestFormatting:
    def test_format_single_letters(self):
        assert bitset.format_mask(0b1011) == "ABD"
        assert bitset.format_mask(0) == "{}"

    def test_format_with_names(self):
        names = ("price", "time", "stops")
        assert bitset.format_mask(0b101, names) == "price,stops"

    def test_format_beyond_names(self):
        assert bitset.format_mask(1 << 30) == "D30"

    def test_parse_compact(self):
        assert bitset.parse_mask("ACD") == 0b1101

    def test_parse_named(self):
        names = ("price", "time", "stops")
        assert bitset.parse_mask("price,stops", names) == 0b101
        assert bitset.parse_mask("time", names) == 0b010

    def test_parse_empty(self):
        assert bitset.parse_mask("") == 0
        assert bitset.parse_mask("{}") == 0

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown dimension"):
            bitset.parse_mask("A?", ("A", "B"))

    @given(st.integers(min_value=0, max_value=(1 << 26) - 1))
    def test_format_parse_roundtrip(self, mask):
        assert bitset.parse_mask(bitset.format_mask(mask)) == mask
