"""Tests for the NBA-like dataset generator (the real-data substitute)."""

import numpy as np
import pytest

from repro.core.types import Direction
from repro.data import NBA_DIMENSIONS, generate_nba_like
from repro.skyline import compute_skyline


@pytest.fixture(scope="module")
def nba_small():
    return generate_nba_like(n_players=2000, seed=1)


class TestSchema:
    def test_dimensions(self, nba_small):
        assert nba_small.names == NBA_DIMENSIONS
        assert nba_small.n_dims == 17
        assert all(d is Direction.MAX for d in nba_small.directions)

    def test_default_size_matches_paper(self):
        ds = generate_nba_like(n_players=10, seed=0)
        assert ds.n_objects == 10
        # the default n_players is the paper's table size
        import inspect

        signature = inspect.signature(generate_nba_like)
        assert signature.parameters["n_players"].default == 17_265

    def test_labels_unique(self, nba_small):
        assert len(set(nba_small.labels)) == nba_small.n_objects

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            generate_nba_like(n_players=-1)


class TestStatistics:
    def test_integer_counting_stats(self, nba_small):
        assert np.allclose(nba_small.values, np.round(nba_small.values))
        assert np.all(nba_small.values >= 0)

    def test_rebounds_are_the_sum_of_splits(self, nba_small):
        orb = nba_small.values[:, NBA_DIMENSIONS.index("ORB")]
        drb = nba_small.values[:, NBA_DIMENSIONS.index("DRB")]
        reb = nba_small.values[:, NBA_DIMENSIONS.index("REB")]
        assert np.array_equal(reb, orb + drb)

    def test_made_attempted_consistency_on_average(self, nba_small):
        fgm = nba_small.values[:, NBA_DIMENSIONS.index("FGM")].sum()
        fga = nba_small.values[:, NBA_DIMENSIONS.index("FGA")].sum()
        assert fgm < fga

    def test_strong_positive_correlation(self, nba_small):
        minutes = nba_small.values[:, NBA_DIMENSIONS.index("MIN")]
        points = nba_small.values[:, NBA_DIMENSIONS.index("PTS")]
        assert np.corrcoef(minutes, points)[0, 1] > 0.8

    def test_heavy_low_end_value_sharing(self, nba_small):
        """Short careers create ties -- the coincidence the model feeds on."""
        games = nba_small.values[:, NBA_DIMENSIONS.index("GP")]
        assert len(np.unique(games)) < nba_small.n_objects * 0.5


class TestSkylineRegime:
    def test_small_full_space_skyline(self, nba_small):
        """The paper's regime: correlated data, tiny full-space skyline."""
        sky = compute_skyline(nba_small)
        assert 1 <= len(sky) <= 150

    def test_skyline_grows_with_dimensionality(self, nba_small):
        sizes = [
            len(compute_skyline(nba_small.prefix_dims(d))) for d in (2, 8, 17)
        ]
        assert sizes[0] <= sizes[1] <= sizes[2]

    def test_deterministic(self):
        a = generate_nba_like(n_players=100, seed=9)
        b = generate_nba_like(n_players=100, seed=9)
        assert np.array_equal(a.values, b.values)
