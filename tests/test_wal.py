"""Tests for the write-ahead log subsystem (repro.wal).

Covers the segment format (CRC framing, torn-tail detection and
truncation, sequence contiguity), the appender (fsync-per-record,
recovery on open), deterministic replay through the maintenance layer,
LSM-style compaction into a freshly published snapshot version, and the
serving integration: mutations acknowledged by :class:`CubeService` must
survive a process death and replay bit-identically on restart.
"""

import json
import zlib

import pytest

from repro.cube import CompressedSkylineCube, MaintainedCube
from repro.cube.io import cube_fingerprint
from repro.serve import CubeService, SnapshotStore
from repro.wal import (
    WalRecord,
    WalWriter,
    apply_records,
    compact_snapshot,
    encode_record,
    read_segment,
    recover_segment,
    retire_segment,
    wal_path,
)


@pytest.fixture
def store(tmp_path):
    return SnapshotStore(tmp_path / "snapshots")


@pytest.fixture
def published(store, flight_routes):
    cube = CompressedSkylineCube.build(flight_routes)
    info = store.publish("routes", flight_routes, cube)
    return store, flight_routes, cube, info


def segment_lines(path):
    return path.read_bytes().splitlines(keepends=True)


class TestFraming:
    def test_encode_read_round_trip(self, tmp_path):
        path = tmp_path / "seg.wal"
        records = [
            WalRecord(seq=1, op="insert", label="X", row=(1.0, 2.0), ts=1.5),
            WalRecord(seq=2, op="delete", label="X", row=None, ts=2.5),
            WalRecord(seq=3, op="insert", label=None, row=(3.0,), ts=3.5),
        ]
        path.write_bytes(b"".join(encode_record(r) for r in records))
        scan = read_segment(path)
        assert scan.records == tuple(records)
        assert not scan.torn
        assert scan.valid_bytes == path.stat().st_size

    def test_missing_segment_scans_empty(self, tmp_path):
        scan = read_segment(tmp_path / "absent.wal")
        assert scan.records == ()
        assert not scan.torn

    def test_corrupt_crc_stops_scan(self, tmp_path):
        path = tmp_path / "seg.wal"
        r1 = WalRecord(seq=1, op="insert", label="A", row=(1.0,), ts=0.0)
        r2 = WalRecord(seq=2, op="delete", label="A", row=None, ts=0.0)
        line2 = bytearray(encode_record(r2))
        line2[12] ^= 0x01  # flip a payload byte; CRC no longer matches
        path.write_bytes(encode_record(r1) + bytes(line2))
        scan = read_segment(path)
        assert scan.records == (r1,)
        assert scan.torn

    def test_unterminated_tail_is_torn(self, tmp_path):
        path = tmp_path / "seg.wal"
        r1 = WalRecord(seq=1, op="insert", label="A", row=(1.0,), ts=0.0)
        path.write_bytes(encode_record(r1) + b'deadbeef {"seq":2')
        scan = read_segment(path)
        assert scan.records == (r1,)
        assert scan.torn

    def test_valid_crc_bad_schema_stops_scan(self, tmp_path):
        path = tmp_path / "seg.wal"
        payload = json.dumps({"seq": 1, "op": "truncate"}).encode()
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        path.write_bytes(b"%08x %s\n" % (crc, payload))
        scan = read_segment(path)
        assert scan.records == ()
        assert scan.torn

    def test_sequence_gap_is_torn(self, tmp_path):
        path = tmp_path / "seg.wal"
        r1 = WalRecord(seq=1, op="insert", label="A", row=(1.0,), ts=0.0)
        r3 = WalRecord(seq=3, op="insert", label="B", row=(2.0,), ts=0.0)
        path.write_bytes(encode_record(r1) + encode_record(r3))
        scan = read_segment(path)
        assert scan.records == (r1,)
        assert scan.torn

    def test_recover_truncates_in_place(self, tmp_path):
        path = tmp_path / "seg.wal"
        r1 = WalRecord(seq=1, op="insert", label="A", row=(1.0,), ts=0.0)
        clean = encode_record(r1)
        path.write_bytes(clean + b"garbage tail no newline")
        records = recover_segment(path)
        assert records == (r1,)
        assert path.read_bytes() == clean


class TestWalWriter:
    def test_append_and_read_back(self, tmp_path):
        path = tmp_path / "seg.wal"
        with WalWriter(path) as writer:
            writer.append("insert", label="X", row=[1, 2])
            writer.append("delete", label="X")
            assert writer.count == 2
        scan = read_segment(path)
        assert [r.op for r in scan.records] == ["insert", "delete"]
        assert scan.records[0].row == (1.0, 2.0)
        assert not scan.torn

    def test_reopen_continues_sequence(self, tmp_path):
        path = tmp_path / "seg.wal"
        with WalWriter(path) as writer:
            writer.append("insert", label="X", row=[1.0])
        with WalWriter(path) as writer:
            assert writer.count == 1
            record = writer.append("insert", label="Y", row=[2.0])
        assert record.seq == 2
        assert len(read_segment(path).records) == 2

    def test_open_recovers_torn_tail(self, tmp_path):
        path = tmp_path / "seg.wal"
        with WalWriter(path) as writer:
            writer.append("insert", label="X", row=[1.0])
        with open(path, "ab") as fh:
            fh.write(b"half-written rec")
        with WalWriter(path) as writer:
            assert writer.count == 1
            writer.append("delete", label="X")
        scan = read_segment(path)
        assert [r.seq for r in scan.records] == [1, 2]
        assert not scan.torn

    def test_first_ts_tracks_oldest_pending(self, tmp_path):
        path = tmp_path / "seg.wal"
        with WalWriter(path) as writer:
            assert writer.first_ts is None
            first = writer.append("insert", label="X", row=[1.0])
            writer.append("insert", label="Y", row=[2.0])
            assert writer.first_ts == first.ts

    def test_unknown_op_rejected(self, tmp_path):
        with WalWriter(tmp_path / "seg.wal") as writer:
            with pytest.raises(ValueError, match="unknown WAL op"):
                writer.append("truncate", label="X")


class TestReplay:
    def test_replay_matches_live_mutations(self, flight_routes, tmp_path):
        cube = CompressedSkylineCube.build(flight_routes)
        live = MaintainedCube.adopt(cube)
        path = tmp_path / "seg.wal"
        with WalWriter(path) as writer:
            writer.append("insert", label="NEW", row=[100.0, 1.0, 0.0])
            live.insert([100.0, 1.0, 0.0], label="NEW")
            writer.append("delete", label="MULTIHOP")
            live.delete("MULTIHOP")
        replayed = MaintainedCube.adopt(CompressedSkylineCube.build(flight_routes))
        applied, skipped = apply_records(replayed, read_segment(path).records)
        assert (applied, skipped) == (2, 0)
        assert cube_fingerprint(replayed.cube) == cube_fingerprint(live.cube)
        assert replayed.dataset.labels == live.dataset.labels

    def test_invalid_records_skipped(self, flight_routes):
        cube = CompressedSkylineCube.build(flight_routes)
        maintained = MaintainedCube.adopt(cube)
        records = (
            WalRecord(seq=1, op="delete", label="NOPE", row=None, ts=0.0),
            WalRecord(seq=2, op="delete", label="DIRECT", row=None, ts=0.0),
        )
        applied, skipped = apply_records(maintained, records)
        assert (applied, skipped) == (1, 1)
        assert "DIRECT" not in maintained.dataset.labels


class TestRetire:
    def test_retire_moves_segment_aside(self, tmp_path):
        path = tmp_path / "v000001.wal"
        path.write_bytes(b"bytes")
        retired = retire_segment(path)
        assert retired.name == "v000001.wal.compacted"
        assert not path.exists()
        assert retired.read_bytes() == b"bytes"

    def test_retire_missing_segment_is_noop(self, tmp_path):
        assert retire_segment(tmp_path / "absent.wal") is None


class TestCompaction:
    def test_compact_publishes_replayed_state(self, published):
        store, dataset, cube, info = published
        segment = wal_path(store.root, "routes", info.version)
        with WalWriter(segment) as writer:
            writer.append("insert", label="NEW", row=[100.0, 1.0, 0.0])
            writer.append("delete", label="MULTIHOP")
        result = compact_snapshot(store, "routes")
        assert result.base_version == "v000001"
        assert result.new_version == "v000002"
        assert (result.records, result.applied, result.skipped) == (2, 2, 0)
        assert store.current_version("routes") == "v000002"
        assert not segment.exists()
        assert segment.with_name("v000001.wal.compacted").exists()

        # The published version is bit-identical to an offline replay.
        expected = MaintainedCube.adopt(cube)
        expected.insert([100.0, 1.0, 0.0], label="NEW")
        expected.delete("MULTIHOP")
        _, compacted, new_info = store.load("routes")
        assert cube_fingerprint(compacted) == cube_fingerprint(expected.cube)
        assert result.fingerprint == new_info.fingerprint

    def test_compact_empty_segment_is_noop(self, published):
        store = published[0]
        result = compact_snapshot(store, "routes")
        assert result.new_version is None
        assert result.records == 0
        assert store.current_version("routes") == "v000001"

    def test_compact_without_active_version_rejected(self, store):
        with pytest.raises(ValueError, match="unknown|no active"):
            compact_snapshot(store, "routes")


class TestServiceDurability:
    def test_acknowledged_mutations_survive_restart(self, published):
        store, dataset, cube, _ = published
        service = CubeService(store, reload_interval=0)
        ack = service.maintenance_insert([100.0, 1.0, 0.0], label="NEW")
        assert ack["cube_version"] == "routes@v000001+1"
        service.maintenance_delete("MULTIHOP")
        before = service.query("skyline", {"subspace": "price,stops"})
        # Simulate a crash: no close, no compaction -- a fresh service on
        # the same store must replay the WAL.
        reborn = CubeService(store, reload_interval=0)
        replayed = reborn.query("skyline", {"subspace": "price,stops"})
        assert replayed["cube_version"] == "routes@v000001+2"
        assert replayed["result"] == before["result"]

        expected = MaintainedCube.adopt(cube)
        expected.insert([100.0, 1.0, 0.0], label="NEW")
        expected.delete("MULTIHOP")
        state = reborn._state("routes")
        assert cube_fingerprint(state.cube) == cube_fingerprint(expected.cube)
        service.close()
        reborn.close()

    def test_invalid_mutation_never_reaches_wal(self, published):
        store = published[0]
        service = CubeService(store, reload_interval=0)
        with pytest.raises(ValueError):
            service.maintenance_delete("NOPE")
        with pytest.raises(ValueError):
            service.maintenance_insert([1.0], label="short-row")
        segment = wal_path(store.root, "routes", "v000001")
        assert read_segment(segment).records == ()
        service.close()

    def test_wal_disabled_loses_mutations(self, published):
        store = published[0]
        service = CubeService(store, reload_interval=0, wal_enabled=False)
        service.maintenance_insert([100.0, 1.0, 0.0], label="NEW")
        assert not wal_path(store.root, "routes", "v000001").exists()
        reborn = CubeService(store, reload_interval=0, wal_enabled=False)
        assert reborn.query("skyline", {"subspace": "price"})["cube_version"] == (
            "routes@v000001"
        )
        service.close()
        reborn.close()

    def test_service_compact_folds_wal(self, published):
        store = published[0]
        service = CubeService(store, reload_interval=0)
        service.maintenance_insert([100.0, 1.0, 0.0], label="NEW")
        out = service.compact()
        assert out["compacted"] is True
        assert out["new_version"] == "v000002"
        assert out["cube_version"] == "routes@v000002"
        assert store.current_version("routes") == "v000002"
        # Served state rolled onto the new base; WAL drained.
        assert service.query("skyline", {"subspace": "price"})["cube_version"] == (
            "routes@v000002"
        )
        again = service.compact()
        assert again["compacted"] is False
        # The compacted snapshot equals the offline replay of the old WAL.
        _, compacted, _ = store.load("routes", version="v000002")
        reborn = CubeService(store, reload_interval=0)
        state = reborn._state("routes")
        assert cube_fingerprint(state.cube) == cube_fingerprint(compacted)
        service.close()
        reborn.close()

    def test_auto_compaction_threshold(self, published):
        store = published[0]
        service = CubeService(store, reload_interval=0, compact_threshold=2)
        service.maintenance_insert([100.0, 1.0, 0.0], label="N1")
        assert store.current_version("routes") == "v000001"
        ack = service.maintenance_insert([101.0, 1.0, 0.0], label="N2")
        # Threshold reached: the mutation that tipped it is acknowledged
        # on the freshly compacted base.
        assert ack["cube_version"] == "routes@v000002"
        assert store.current_version("routes") == "v000002"
        assert not wal_path(store.root, "routes", "v000001").exists()
        service.close()

    def test_negative_compact_threshold_rejected(self, published):
        with pytest.raises(ValueError, match="compact_threshold"):
            CubeService(published[0], compact_threshold=-1)

    def test_health_reports_wal_depth_and_staleness(self, published):
        store = published[0]
        service = CubeService(store, reload_interval=0)
        service.query("skyline", {"subspace": "price"})  # force load
        health = service.health()
        snap = health["snapshots"]["routes"]
        assert snap["wal_depth"] == 0
        assert snap["wal_staleness_seconds"] is None
        service.maintenance_insert([100.0, 1.0, 0.0], label="NEW")
        snap = service.health()["snapshots"]["routes"]
        assert snap["wal_depth"] == 1
        assert snap["wal_staleness_seconds"] >= 0
        service.close()

    def test_wal_disabled_health_depth_is_none(self, published):
        service = CubeService(
            published[0], reload_interval=0, wal_enabled=False
        )
        service.query("skyline", {"subspace": "price"})
        snap = service.health()["snapshots"]["routes"]
        assert snap["wal_depth"] is None
        service.close()


class TestCrashRecoverySubprocess:
    """SIGKILL the serving process mid-churn; replay must be bit-identical.

    The restarted server's every subspace skyline is checked against the
    soak harness's :class:`ConsistencyOracle` -- an offline rebuild of
    "base dataset + acknowledged mutations", computed with an independent
    skyline implementation -- and against a direct offline replay of the
    on-disk WAL segment.
    """

    ALL_SUBSPACES = (
        "price",
        "traveltime",
        "stops",
        "price,traveltime",
        "price,stops",
        "traveltime,stops",
        "price,traveltime,stops",
    )

    def _launch(self, snaps, publish=None):
        import subprocess
        import sys
        import time
        from pathlib import Path

        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--snapshot-dir",
            str(snaps),
            "--snapshot",
            "routes",
            "--port",
            "0",
        ]
        if publish is not None:
            argv += ["--publish", str(publish)]
        proc = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            cwd=Path(__file__).resolve().parent.parent,
        )
        deadline = time.monotonic() + 120
        url = None
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            if line.startswith("serving at "):
                url = line.split()[2]
                break
        assert url, "server never reported its URL"
        return proc, url

    def test_sigkill_then_replay_bit_identical(self, tmp_path, flight_routes):
        import signal

        from repro.data import save_csv
        from repro.loadtest import ConsistencyOracle

        from .test_serve import http_get, http_post

        csv_path = tmp_path / "routes.csv"
        save_csv(flight_routes, csv_path)
        snaps = tmp_path / "snaps"
        oracle = ConsistencyOracle(flight_routes)
        oracle.register_base("routes@v000001")

        proc, url = self._launch(snaps, publish=csv_path)
        try:
            mutations = [
                ("insert", (100.0, 1.0, 0.0), "CONCORDE"),
                ("insert", (985.0, 14.0, 1.0), "CODESHARE"),
                ("delete", "MULTIHOP"),
                ("insert", (2000.0, 10.0, 0.0), "PRIVATE-JET"),
            ]
            last_ack = None
            for op in mutations:
                if op[0] == "insert":
                    status, body = http_post(
                        f"{url}/v1/maintenance/insert",
                        {"row": list(op[1]), "label": op[2]},
                    )
                else:
                    status, body = http_post(
                        f"{url}/v1/maintenance/delete", {"label": op[1]}
                    )
                assert status == 200
                last_ack = body["cube_version"]
                oracle.record_mutation(last_ack, op)
            assert last_ack == "routes@v000001+4"
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        # The acknowledged mutations are all on disk, in order.
        segment = wal_path(snaps, "routes", "v000001")
        records = read_segment(segment).records
        assert [r.op for r in records] == [op[0] for op in mutations]

        # Offline replay of dataset + WAL: the ground truth fingerprint.
        offline = MaintainedCube.adopt(
            CompressedSkylineCube.build(flight_routes)
        )
        assert apply_records(offline, records) == (4, 0)

        proc, url = self._launch(snaps)
        try:
            for subspace in self.ALL_SUBSPACES:
                status, body = http_get(
                    f"{url}/v1/skyline?subspace={subspace}"
                )
                assert status == 200
                assert body["cube_version"] == "routes@v000001+4"
                assert sorted(body["result"]) == oracle.expected_skyline(
                    "routes@v000001+4", subspace
                ), subspace

            # The replayed in-process cube equals the offline replay too.
            reborn = CubeService(SnapshotStore(snaps), reload_interval=0)
            state = reborn._state("routes")
            assert cube_fingerprint(state.cube) == cube_fingerprint(
                offline.cube
            )
            reborn.close()

            # Compaction over HTTP folds the segment into v000002...
            status, body = http_post(f"{url}/v1/maintenance/compact", {})
            assert status == 200
            assert body["new_version"] == "v000002"
            status, body = http_get(f"{url}/v1/skyline?subspace=price")
            assert body["cube_version"] == "routes@v000002"
            assert not segment.exists()

            # ...and the published version matches the replayed state.
            _, compacted, _ = SnapshotStore(snaps).load("routes", "v000002")
            assert cube_fingerprint(compacted) == cube_fingerprint(
                offline.cube
            )
        finally:
            proc.terminate()
            proc.wait(timeout=30)
