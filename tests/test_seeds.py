"""Tests for seed skyline groups and their decisive subspaces."""

from hypothesis import given, settings

from repro.core.cgroups import enumerate_maximal_cgroups
from repro.core.dominance import PairwiseMatrices
from repro.core.seeds import compute_seed_groups, singleton_decisive
from repro.core.types import Dataset
from repro.core.validate import decisive_subspaces_definitional
from repro.skyline import compute_skyline

from .conftest import tiny_int_datasets


def build_seed_groups(ds: Dataset):
    seeds = compute_skyline(ds)
    matrices = PairwiseMatrices(ds, seeds)
    cgroups = enumerate_maximal_cgroups(matrices)
    return seeds, compute_seed_groups(ds, matrices, cgroups)


class TestSingletonDecisive:
    def test_each_dimension(self):
        assert singleton_decisive(0b101) == (0b001, 0b100)

    def test_empty(self):
        assert singleton_decisive(0) == ()


class TestRunningExample:
    def test_seed_lattice_matches_figure3a(self, running_example):
        seeds, groups = build_seed_groups(running_example)
        assert seeds == [1, 3, 4]
        got = {
            (g.members, g.subspace): g.decisive for g in groups
        }
        A, B, C, D = 1, 2, 4, 8
        ABCD = 0b1111
        assert got == {
            ((1,), ABCD): (A | C, C | D),          # (P2, AC, CD)
            ((3,), ABCD): (B | C,),                # (P4, BC)
            ((4,), ABCD): (A | B, B | D),          # (P5, AB, BD)
            ((1, 3), C): (C,),                     # (P2P4, C)
            ((1, 4), A | D): (A, D),               # (P2P5, A, D)
            ((3, 4), B): (B,),                     # (P4P5, B)
        }


class TestDroppedCGroups:
    def test_cgroup_without_decisive_is_dropped(self):
        """A c-group dominated everywhere in its subspace is not a group.

        Seeds u=(0,9,9), w=(1,2,5), x=(1,5,2): w and x share only A=1 and
        form the maximal c-group ({w,x}, A), but u beats them on A (0 < 1),
        so the clause ``A ∩ dom[w,u]`` is empty: step 4 drops the c-group.
        """
        ds = Dataset.from_rows([[0, 9, 9], [1, 2, 5], [1, 5, 2]])
        seeds, groups = build_seed_groups(ds)
        assert seeds == [0, 1, 2]
        member_sets = {g.members for g in groups}
        assert (1, 2) not in member_sets  # the w-x c-group was dropped
        # but the c-group enumeration itself did produce it
        matrices = PairwiseMatrices(ds, seeds)
        cgroups = enumerate_maximal_cgroups(matrices)
        assert ((1, 2), 0b001) in cgroups


class TestAgainstDefinition:
    @settings(max_examples=60, deadline=None)
    @given(tiny_int_datasets(max_objects=8, max_dims=4, max_value=3))
    def test_seed_decisive_matches_definition_over_seed_set(self, ds: Dataset):
        """Corollary 1 == Definition 2 evaluated on the seed-only dataset."""
        seeds, groups = build_seed_groups(ds)
        seed_ds = ds.take(seeds)
        position = {g: i for i, g in enumerate(seeds)}
        for group in groups:
            local_members = [position[m] for m in group.members]
            expected = decisive_subspaces_definitional(
                seed_ds, sorted(local_members), group.subspace
            )
            assert list(group.decisive) == expected

    @settings(max_examples=60, deadline=None)
    @given(tiny_int_datasets(max_objects=8, max_dims=4, max_value=3))
    def test_every_decisive_inside_maximal_subspace(self, ds: Dataset):
        _, groups = build_seed_groups(ds)
        for g in groups:
            assert g.decisive, "every seed skyline group has a decisive subspace"
            for c in g.decisive:
                assert c & ~g.subspace == 0
