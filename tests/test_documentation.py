"""Documentation enforcement: every public item carries a docstring.

The library's documentation promise ("doc comments on every public item")
is kept honest mechanically: this test walks every module under ``repro``
and asserts that each public module, class, function and method either has
a non-trivial docstring or inherits one.
"""

import importlib
import inspect
import pkgutil

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def is_public(name: str) -> bool:
    return not name.startswith("_")


def test_all_modules_have_docstrings():
    for module in iter_modules():
        assert module.__doc__ and module.__doc__.strip(), module.__name__


def test_all_public_callables_have_docstrings():
    missing: list[str] = []
    for module in iter_modules():
        for name, obj in vars(module).items():
            if not is_public(name):
                continue
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if getattr(obj, "__module__", None) != module.__name__:
                    continue  # re-export; documented at its home
                if not (obj.__doc__ and obj.__doc__.strip()):
                    missing.append(f"{module.__name__}.{name}")
                if inspect.isclass(obj):
                    for mname, member in vars(obj).items():
                        if not is_public(mname):
                            continue
                        target = None
                        if inspect.isfunction(member):
                            target = member
                        elif isinstance(member, (property, classmethod, staticmethod)):
                            target = (
                                member.fget
                                if isinstance(member, property)
                                else member.__func__
                            )
                        if target is not None and not (
                            target.__doc__ and target.__doc__.strip()
                        ):
                            missing.append(
                                f"{module.__name__}.{name}.{mname}"
                            )
    assert not missing, "undocumented public items:\n  " + "\n  ".join(missing)


def test_public_api_reexports_resolve():
    for module in iter_modules():
        exported = getattr(module, "__all__", None)
        if exported is None:
            continue
        for name in exported:
            assert hasattr(module, name), f"{module.__name__}.{name} missing"
