"""Tests for the query-serving observability layer.

Covers structured JSON logging (repro.obs.logging), Prometheus export and
the /metrics endpoint (repro.obs.promexport), the slow-query log
(repro.obs.slowlog), EXPLAIN plans and the plan<->metrics-registry counter
equality of the query engine, the exporter round-trips under the new query
spans, and the benchmark trajectory ledger with its CLI diff gate.
"""

import io
import json
import re
import urllib.error
import urllib.request

import pytest

from repro.bench.ledger import (
    LEDGER_FORMAT,
    LedgerEntry,
    append_entry,
    diff_entries,
    entry_from_result,
    ledger_path,
    load_entries,
    normalize_metric,
    render_diff,
)
from repro.bench.reporting import FigureResult
from repro.cli import main
from repro.cube import QueryEngine
from repro.data import save_csv
from repro.obs import (
    configure_logging,
    configure_slow_query_log,
    disable_tracing,
    enable_tracing,
    get_logger,
    log_event,
    logging_config,
    prometheus_name,
    registry,
    render_prometheus,
    render_span_tree,
    reset_logging,
    reset_metrics,
    reset_slow_queries,
    slow_query_log,
    span,
    spans_from_ndjson,
    spans_to_chrome_trace,
    spans_to_ndjson,
    start_metrics_server,
    write_trace,
)
from repro.obs.slowlog import SlowQuery, SlowQueryLog
from repro.parallel.backend import _init_worker


@pytest.fixture(autouse=True)
def _clean_observability():
    """Every test starts and ends with all observability state zeroed."""
    disable_tracing()
    reset_metrics()
    reset_logging()
    configure_slow_query_log(capacity=32, threshold=0.0)
    yield
    disable_tracing()
    reset_metrics()
    reset_logging()
    configure_slow_query_log(capacity=32, threshold=0.0)


# ---------------------------------------------------------------------------
# structured logging
# ---------------------------------------------------------------------------


class TestStructuredLogging:
    def test_records_are_json_with_extras(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        log_event(get_logger("test"), "unit.event", items=3, label="P5")
        record = json.loads(stream.getvalue().strip())
        assert record["event"] == "unit.event"
        assert record["level"] == "info"
        assert record["logger"] == "repro.test"
        assert record["items"] == 3
        assert record["label"] == "P5"
        assert isinstance(record["ts"], float)

    def test_span_correlation(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        enable_tracing()
        with span("unit.work"):
            get_logger("test").info("inside")
        record = json.loads(stream.getvalue().strip())
        assert record["span"] == "unit.work"
        assert isinstance(record["span_id"], int) and record["span_id"] > 0

    def test_no_span_fields_outside_spans(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        get_logger("test").info("outside")
        record = json.loads(stream.getvalue().strip())
        assert "span" not in record and "span_id" not in record

    def test_reconfigure_does_not_stack_handlers(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        configure_logging("debug", stream=stream)
        get_logger("test").debug("once")
        lines = [ln for ln in stream.getvalue().splitlines() if ln]
        assert len(lines) == 1

    def test_level_filtering_and_config(self):
        stream = io.StringIO()
        config = configure_logging("warning", stream=stream)
        assert config == {"level": "warning"}
        assert logging_config() == {"level": "warning"}
        get_logger("test").info("dropped")
        get_logger("test").warning("kept")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1 and json.loads(lines[0])["event"] == "kept"

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("loud")

    def test_reset_clears_config(self):
        configure_logging("info", stream=io.StringIO())
        reset_logging()
        assert logging_config() is None

    def test_worker_initializer_applies_logging_config(self):
        # The process-pool initializer re-applies the parent's config so
        # worker records match; exercised inline here.
        _init_worker(None, {"level": "debug"})
        assert logging_config() == {"level": "debug"}

    def test_exceptions_serialised(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            get_logger("test").exception("failed")
        record = json.loads(stream.getvalue().strip())
        assert record["level"] == "error"
        assert "RuntimeError: boom" in record["exc"]


# ---------------------------------------------------------------------------
# Prometheus export
# ---------------------------------------------------------------------------


#: One Prometheus text-format sample line: name, optional labels, value.
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [0-9.eE+-]+(\s|$)|^[a-zA-Z_:]"
    r"[a-zA-Z0-9_:]*(\{[^{}]*\})? \+Inf$"
)


class TestPrometheusExport:
    def test_name_sanitisation(self):
        assert prometheus_name("query.q1.seconds") == "repro_query_q1_seconds"
        assert prometheus_name("weird-name!", "total") == "repro_weird_name_total"

    def test_counter_and_gauge_rendering(self):
        reg = registry()
        reg.counter("unit.requests").inc(7)
        reg.gauge("unit.depth").set(3)
        text = render_prometheus()
        assert "# TYPE repro_unit_requests_total counter" in text
        assert "repro_unit_requests_total 7" in text
        assert "repro_unit_depth 3" in text

    def test_histogram_rendering_is_cumulative(self):
        reg = registry()
        hist = reg.histogram("unit.seconds", bounds=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        text = render_prometheus()
        assert 'repro_unit_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_unit_seconds_bucket{le="1"} 2' in text
        assert 'repro_unit_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_unit_seconds_count 3" in text
        assert "repro_unit_seconds_sum 5.55" in text

    def test_percentiles_recoverable_from_exported_buckets(self):
        """External consumers (Grafana) compute percentiles from the
        ``le``-labelled cumulative bucket series alone; reconstructing the
        p95 from the exported text must agree with the registry's own
        interpolated estimate to within one bucket width."""
        reg = registry()
        bounds = (0.01, 0.05, 0.1, 0.5, 1.0)
        hist = reg.histogram("recon.seconds", bounds=bounds)
        samples = [0.004, 0.02, 0.03, 0.06, 0.07, 0.2, 0.3, 0.4, 0.45, 0.8]
        for value in samples:
            hist.observe(value)
        text = render_prometheus()
        buckets = []
        for line in text.splitlines():
            match = re.match(
                r'repro_recon_seconds_bucket\{le="([^"]+)"\} (\d+)', line
            )
            if match:
                le = (
                    float("inf")
                    if match.group(1) == "+Inf"
                    else float(match.group(1))
                )
                buckets.append((le, int(match.group(2))))
        assert [le for le, _ in buckets] == [*bounds, float("inf")]
        counts = [c for _, c in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert counts[-1] == len(samples)
        # histogram_quantile-style reconstruction: the first bucket whose
        # cumulative count reaches rank(q) brackets the percentile.
        target = 0.95 * len(samples)
        upper = next(le for le, c in buckets if c >= target)
        lower = max(
            (le for le, c in buckets if le < upper), default=0.0
        )
        assert lower <= hist.quantile(0.95) <= upper

    def test_every_line_parses_as_prometheus_text(self, running_example):
        engine = QueryEngine.build(running_example)
        engine.skyline("A,B")
        engine.where_wins("P5")
        text = render_prometheus()
        assert text.endswith("\n")
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            assert _SAMPLE_RE.match(line), f"unparseable sample line: {line!r}"

    def test_metrics_endpoint(self, running_example):
        engine = QueryEngine.build(running_example)
        engine.skyline("A")
        with start_metrics_server() as server:
            with urllib.request.urlopen(f"{server.url}/metrics", timeout=5) as rsp:
                assert rsp.status == 200
                assert rsp.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4"
                )
                body = rsp.read().decode("utf-8")
            assert "repro_query_q1_count_total 1" in body
            with urllib.request.urlopen(f"{server.url}/healthz", timeout=5) as rsp:
                health = json.loads(rsp.read())
            assert health["status"] == "ok"
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{server.url}/nope", timeout=5)
            assert err.value.code == 404


# ---------------------------------------------------------------------------
# slow-query log
# ---------------------------------------------------------------------------


class TestSlowQueryLog:
    def _q(self, seconds, i=0):
        return SlowQuery(kind="q1.skyline", argument=f"arg{i}", seconds=seconds)

    def test_retains_worst_n(self):
        log = SlowQueryLog(capacity=3)
        for i, seconds in enumerate([0.5, 0.1, 0.9, 0.3, 0.7]):
            log.record(self._q(seconds, i))
        assert [e.seconds for e in log.entries()] == [0.9, 0.7, 0.5]
        assert log.seen == 5

    def test_fast_queries_do_not_evict(self):
        log = SlowQueryLog(capacity=2)
        log.record(self._q(0.9))
        log.record(self._q(0.8))
        assert log.record(self._q(0.1)) is False
        assert [e.seconds for e in log.entries()] == [0.9, 0.8]

    def test_threshold_filters(self):
        log = SlowQueryLog(capacity=8, threshold=0.25)
        assert log.record(self._q(0.1)) is False
        assert log.record(self._q(0.5)) is True
        assert len(log) == 1 and log.seen == 2

    def test_render_and_clear(self):
        log = SlowQueryLog(capacity=2)
        log.record(
            SlowQuery(
                kind="q2.why_not",
                argument="P2 in A",
                seconds=0.01,
                plan={"strategy": "theorem5-fallback", "counters": {"x": 1}},
            )
        )
        text = log.render()
        assert "q2.why_not(P2 in A)" in text
        assert "theorem5-fallback" in text
        log.clear()
        assert log.render() == "(no queries recorded)"

    def test_engine_feeds_global_log(self, running_example):
        engine = QueryEngine.build(running_example)
        reset_slow_queries()
        engine.skyline("A,B")
        engine.where_wins("P5")
        entries = slow_query_log().entries()
        assert {e.kind for e in entries} == {"q1.skyline", "q2.where_wins"}
        assert all(e.plan and e.plan["strategy"] for e in entries)


# ---------------------------------------------------------------------------
# EXPLAIN plans and the plan <-> registry counter equality
# ---------------------------------------------------------------------------


class TestQueryPlans:
    #: Every explainable kind with arguments valid for ``running_example``.
    CASES = [
        ("skyline", ("A,B",), "decisive-scan"),
        ("where-wins", ("P5",), "lattice-walk"),
        ("wins-in", ("P5", "A,B"), "decisive-hit"),
        ("signature-of", ("P5",), "group-lookup"),
        ("why-not", ("P1", "A"), "theorem5-fallback"),
        ("drill-down", ("A",), "lattice-neighbors"),
        ("roll-up", ("A,B",), "lattice-neighbors"),
        ("top-frequent", (3,), "lattice-walk"),
    ]

    @pytest.mark.parametrize("kind,args,strategy", CASES)
    def test_plan_counters_equal_registry_deltas(
        self, running_example, kind, args, strategy
    ):
        engine = QueryEngine.build(running_example)
        reset_metrics()
        plan = engine.explain(kind, *args)
        assert plan.strategy == strategy
        counters = {c.name: c.value for c in registry().counters().values()}
        for name, value in plan.counters.items():
            assert counters.get(f"query.{name}", 0) == value, name
        assert counters[f"query.strategy.{strategy}"] == 1
        assert counters[f"query.{plan.family}.count"] == 1
        assert "result_preview" in plan.detail

    def test_wins_in_miss_strategy(self, running_example):
        engine = QueryEngine.build(running_example)
        # P1 wins nowhere (dominated by P2 everywhere it could compete).
        plan = engine.explain("wins-in", "P1", "A,B")
        assert plan.strategy == "group-miss"
        assert plan.result_size == 0

    def test_why_not_fallback_counts_dominance_work(self, running_example):
        engine = QueryEngine.build(running_example)
        plan = engine.explain("why-not", "P1", "A")
        # The Theorem-5 fallback tests the object against the whole table.
        assert plan.counters["dominance_comparisons"] == running_example.n_objects
        assert plan.detail["dominators"] >= 1

    def test_latency_histogram_one_observation_per_query(self, running_example):
        engine = QueryEngine.build(running_example)
        reset_metrics()
        engine.skyline("A,B")
        engine.skyline("A")
        assert registry().histogram("query.q1.seconds").count == 2

    def test_explain_result_matches_direct_call(self, running_example):
        engine = QueryEngine.build(running_example)
        direct = engine.skyline("A,B")
        plan = engine.explain("skyline", "A,B")
        assert plan.result_size == len(direct)
        for label in direct:
            assert label in plan.detail["result_preview"]

    def test_explain_rejects_unknown_kind(self, running_example):
        engine = QueryEngine.build(running_example)
        with pytest.raises(ValueError, match="known queries"):
            engine.explain("frobnicate", "A")

    def test_explain_rejects_wrong_arity(self, running_example):
        engine = QueryEngine.build(running_example)
        with pytest.raises(ValueError, match="argument"):
            engine.explain("wins-in", "P5")

    def test_top_frequent_returns_labels(self, running_example):
        engine = QueryEngine.build(running_example)
        top = engine.top_frequent(2)
        assert len(top) == 2
        assert all(
            label in running_example.labels and freq > 0 for label, freq in top
        )

    def test_plan_render_mentions_all_counters(self, running_example):
        engine = QueryEngine.build(running_example)
        text = engine.explain("skyline", "A,B").render()
        assert text.startswith("EXPLAIN q1.skyline(A,B)")
        for needle in ("strategy:", "groups considered:", "interval checks:",
                       "dominance comparisons:", "elapsed:"):
            assert needle in text


# ---------------------------------------------------------------------------
# exporter round-trips under query spans
# ---------------------------------------------------------------------------


class TestExportersUnderQueryLoad:
    def _session_spans(self, dataset):
        tracer = enable_tracing()
        engine = QueryEngine.build(dataset)
        engine.skyline("A,B")
        engine.where_wins("P5")
        engine.why_not("P1", "A")
        engine.top_frequent(2)
        disable_tracing()
        return tracer.roots

    def test_ndjson_roundtrip_of_full_session(self, running_example):
        roots = self._session_spans(running_example)
        assert any(r.name.startswith("query.") for r in roots)
        assert spans_from_ndjson(spans_to_ndjson(roots)) == roots

    def test_chrome_trace_of_full_session_is_valid(self, running_example):
        roots = self._session_spans(running_example)
        trace = spans_to_chrome_trace(roots)
        json.dumps(trace)  # must be serialisable as-is
        events = trace["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
        names = {e["name"] for e in events}
        assert "query.q1.skyline" in names
        assert "query.q2.why_not" in names

    def test_write_trace_rejects_unknown_suffix(self, tmp_path):
        with span("unit"):
            pass
        with pytest.raises(ValueError, match=r"\.json.*\.jsonl.*\.ndjson"):
            write_trace(tmp_path / "trace.txt", [])

    def test_write_trace_suffixes_still_work(self, tmp_path, running_example):
        roots = self._session_spans(running_example)
        ndjson = write_trace(tmp_path / "t.ndjson", roots)
        chrome = write_trace(tmp_path / "t.json", roots)
        assert spans_from_ndjson(ndjson.read_text()) == roots
        assert json.loads(chrome.read_text())["traceEvents"]

    def test_span_tree_details_are_single_line_and_truncated(self):
        tracer = enable_tracing()
        with span("unit", note="line1\nline2", blob="x" * 200):
            pass
        disable_tracing()
        text = render_span_tree(tracer.roots)
        line = next(ln for ln in text.splitlines() if "unit" in ln)
        assert "line1\\nline2" in line
        assert "x" * 200 not in line and "…" in line


# ---------------------------------------------------------------------------
# benchmark trajectory ledger
# ---------------------------------------------------------------------------


def _entry(metrics, figure="fig8", scale="smoke", created=1000.0):
    return LedgerEntry(
        figure=figure, scale=scale, created=created, metrics=metrics
    )


class TestLedger:
    def test_append_and_load_roundtrip(self, tmp_path):
        path = ledger_path(tmp_path, "fig8")
        assert path.name == "BENCH_fig8.json"
        first = _entry({"stellar_total_s": 0.5})
        second = _entry({"stellar_total_s": 0.6}, created=2000.0)
        assert append_entry(path, first) == 0
        assert append_entry(path, second) == 1
        loaded = load_entries(path)
        assert loaded == [first, second]
        assert json.loads(path.read_text())["format"] == LEDGER_FORMAT

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_entries(tmp_path / "BENCH_nope.json") == []

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text('{"something": "else"}')
        with pytest.raises(ValueError, match="not a repro-bench-ledger"):
            load_entries(path)

    def test_entry_from_result_normalises_timing_columns(self):
        result = FigureResult(
            figure="Figure 8",
            title="unit",
            headers=["d", "stellar_s", "skyey_s"],
            rows=[[2, 0.1, 0.4], [3, 0.2, None], [4, 0.3, 0.6]],
        )
        entry = entry_from_result(
            result, figure="fig8", scale="smoke", comparisons=1234,
            parallel="thread", workers=4,
        )
        assert entry.metrics["stellar_total_s"] == pytest.approx(0.6)
        assert entry.metrics["skyey_total_s"] == pytest.approx(1.0)
        assert entry.metrics["points_measured"] == 3
        assert entry.metrics["dominance_comparisons"] == 1234
        assert entry.parallel == "thread" and entry.workers == 4

    def test_diff_flags_2x_regression(self):
        base = _entry({"stellar_total_s": 0.5, "dominance_comparisons": 100})
        cand = _entry({"stellar_total_s": 1.0, "dominance_comparisons": 100})
        diffs = diff_entries(base, cand, threshold=0.5)
        by_name = {d.metric: d for d in diffs}
        assert by_name["stellar_total_s"].regressed
        assert by_name["stellar_total_s"].ratio == pytest.approx(2.0)
        assert not by_name["dominance_comparisons"].regressed
        # A generous threshold keeps the same movement green.
        assert not any(
            d.regressed for d in diff_entries(base, cand, threshold=1.5)
        )

    def test_diff_zero_baseline(self):
        diffs = diff_entries(_entry({"m": 0}), _entry({"m": 3}), threshold=0.5)
        assert diffs[0].ratio == float("inf") and diffs[0].regressed

    def test_render_diff(self):
        base = _entry({"stellar_total_s": 0.5})
        cand = _entry({"stellar_total_s": 1.1}, created=2000.0)
        diffs = diff_entries(base, cand, threshold=0.25)
        text = render_diff(base, cand, diffs, 0.25)
        assert "REGRESSION" in text
        assert "1 regression(s) beyond threshold" in text

    def test_numeric_normalization(self, tmp_path):
        """Integral metrics serialize as ints, float-or-int on read alike."""
        assert normalize_metric(6.0) == 6 and isinstance(
            normalize_metric(6.0), int
        )
        assert normalize_metric(6) == 6 and isinstance(normalize_metric(6), int)
        assert normalize_metric(0.25) == 0.25 and isinstance(
            normalize_metric(0.25), float
        )
        path = ledger_path(tmp_path, "norm")
        append_entry(
            path, _entry({"points_measured": 6.0, "total_s": 1.25})
        )
        raw = json.loads(path.read_text())["entries"][0]["metrics"]
        assert raw["points_measured"] == 6
        assert isinstance(raw["points_measured"], int)
        assert isinstance(raw["total_s"], float)
        # Reading a legacy file with the float spelling normalizes too.
        (loaded,) = load_entries(path)
        assert isinstance(loaded.metrics["points_measured"], int)

    def test_diff_only_filters_metrics(self):
        base = _entry({"skyline_p99_s": 0.010, "shed_rate": 0.0})
        cand = _entry({"skyline_p99_s": 0.011, "shed_rate": 1.0})
        all_diffs = diff_entries(base, cand, threshold=0.5)
        assert any(d.regressed for d in all_diffs)  # shed_rate blew up
        gated = diff_entries(base, cand, threshold=0.5, only=["*_p99_s"])
        assert [d.metric for d in gated] == ["skyline_p99_s"]
        assert not any(d.regressed for d in gated)
        assert diff_entries(base, cand, only=["nomatch*"]) == []


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------


@pytest.fixture
def routes_csv(tmp_path, flight_routes):
    path = tmp_path / "routes.csv"
    save_csv(flight_routes, path)
    return str(path)


class TestServingCli:
    def test_query_explain(self, routes_csv, capsys):
        rc = main(
            ["query", "--input", routes_csv, "--skyline-of", "price", "--explain"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "EXPLAIN q1.skyline(price)" in out
        assert "strategy:              decisive-scan" in out

    def test_query_wins_in_exit_codes(self, routes_csv, capsys):
        assert (
            main(["query", "--input", routes_csv, "--wins-in",
                  "BUDGET-LHR", "price"]) == 0
        )
        assert capsys.readouterr().out.strip() == "yes"
        assert (
            main(["query", "--input", routes_csv, "--wins-in",
                  "SLOW-EXPENSIVE", "price"]) == 1
        )
        assert capsys.readouterr().out.strip() == "no"

    def test_query_why_not(self, routes_csv, capsys):
        rc = main(
            ["query", "--input", routes_csv, "--why-not",
             "SLOW-EXPENSIVE", "price,stops"]
        )
        assert rc == 0
        assert "SLOW-EXPENSIVE" in capsys.readouterr().out

    def test_query_signature_of(self, routes_csv, capsys):
        rc = main(["query", "--input", routes_csv, "--signature-of", "DIRECT"])
        assert rc == 0
        assert "DIRECT" in capsys.readouterr().out

    def test_query_unknown_label_is_a_clean_error(self, routes_csv, capsys):
        rc = main(["query", "--input", routes_csv, "--where-wins", "NOPE"])
        assert rc == 2
        assert "unknown object label" in capsys.readouterr().err

    def test_slowlog_flag_prints_report(self, routes_csv, capsys):
        rc = main(
            ["query", "--input", routes_csv, "--skyline-of", "price",
             "--slowlog", "5"]
        )
        assert rc == 0
        assert "slow-query log:" in capsys.readouterr().out

    def test_log_json_flag_emits_records(self, routes_csv, capsys):
        rc = main(
            ["query", "--input", routes_csv, "--skyline-of", "price",
             "--log-json", "debug"]
        )
        assert rc == 0
        err = capsys.readouterr().err
        served = [
            json.loads(line)
            for line in err.splitlines()
            if '"query.served"' in line
        ]
        assert served and served[0]["strategy"] == "decisive-scan"

    def test_trace_bad_suffix_is_a_clean_error(self, routes_csv, capsys, tmp_path):
        rc = main(
            ["query", "--input", routes_csv, "--skyline-of", "price",
             "--trace", str(tmp_path / "trace.txt")]
        )
        assert rc == 2
        assert "unsupported trace file suffix" in capsys.readouterr().err

    def test_bench_appends_ledger_entry(self, tmp_path, capsys):
        rc = main(
            ["bench", "fig10", "--scale", "smoke", "--out", str(tmp_path)]
        )
        assert rc == 0
        assert "ledger entry 0 appended" in capsys.readouterr().out
        entries = load_entries(ledger_path(tmp_path, "fig10"))
        assert len(entries) == 1
        assert entries[0].scale == "smoke"
        assert entries[0].metrics["dominance_comparisons"] > 0

    def test_bench_no_ledger_opt_out(self, tmp_path, capsys):
        rc = main(
            ["bench", "fig10", "--scale", "smoke", "--out", str(tmp_path),
             "--no-ledger"]
        )
        assert rc == 0
        assert not ledger_path(tmp_path, "fig10").exists()

    def test_bench_diff_gates_on_injected_regression(self, tmp_path, capsys):
        path = ledger_path(tmp_path, "fig8")
        append_entry(path, _entry({"stellar_total_s": 0.5}))
        append_entry(path, _entry({"stellar_total_s": 1.0}, created=2000.0))
        rc = main(
            ["bench", "diff", "--ledger", str(path), "--threshold", "0.5"]
        )
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out
        # The same ledger passes under a threshold above the 2x movement.
        assert (
            main(["bench", "diff", "--ledger", str(path),
                  "--threshold", "1.5"]) == 0
        )

    def test_bench_diff_requires_ledger(self, capsys):
        assert main(["bench", "diff"]) == 2
        assert "--ledger" in capsys.readouterr().err

    def test_bench_diff_missing_file(self, tmp_path, capsys):
        rc = main(["bench", "diff", "--ledger", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "no ledger entries" in capsys.readouterr().err
