"""Tests for the open-loop load harness (repro.loadtest).

Covers the zipfian workload generator (determinism, skew, coverage), the
exact percentile and capacity-model math, the ledger-entry orientation
(higher is worse), the soak-mode consistency oracle, the end-to-end run
against an in-process server (with churn and hot reloads), and the CLI --
including the ``bench diff --only '*_p99_s'`` regression gate the CI job
relies on.
"""

import json
import random
import threading

import pytest

from repro.bench.ledger import LedgerEntry, append_entry, load_entries
from repro.loadtest import (
    LoadtestConfig,
    RequestRecord,
    WorkloadMix,
    fit_capacity,
    percentile,
    report_entry,
    run_loadtest,
    summarize,
    zipf_weights,
)
from repro.loadtest.runner import _Oracle, _Runner
from repro.serve import CubeService, SnapshotStore, start_server


@pytest.fixture
def served(tmp_path, flight_routes):
    """An in-process server with an empty store the harness publishes to."""
    store = SnapshotStore(tmp_path / "snapshots")
    service = CubeService(
        store, default_snapshot="loadtest", reload_interval=0.05
    )
    with start_server(service) as server:
        yield server.url, service


@pytest.fixture
def routes_csv(tmp_path, flight_routes):
    from repro.data import save_csv

    path = tmp_path / "routes.csv"
    save_csv(flight_routes, path)
    return path


class TestZipf:
    def test_weights_normalized_and_decreasing(self):
        weights = zipf_weights(10, 1.1)
        assert abs(sum(weights) - 1.0) < 1e-12
        assert weights == sorted(weights, reverse=True)
        assert weights[0] > 3 * weights[9]

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(5, 0.0)


class TestWorkloadMix:
    def test_deterministic_sequence(self, flight_routes):
        mix = WorkloadMix(flight_routes)
        first = [mix.generate(random.Random(42)) for _ in range(1)]
        a = random.Random(7)
        b = random.Random(7)
        seq_a = [mix.generate(a) for _ in range(50)]
        seq_b = [mix.generate(b) for _ in range(50)]
        assert seq_a == seq_b
        assert first  # generator produced something

    def test_kind_mix_is_skyline_heavy(self, flight_routes):
        mix = WorkloadMix(flight_routes)
        rng = random.Random(0)
        kinds = [mix.generate(rng).kind for _ in range(2000)]
        counts = {k: kinds.count(k) for k in set(kinds)}
        assert max(counts, key=counts.get) == "skyline"
        # Every configured kind shows up in a long enough stream.
        assert set(counts) == set(mix.kinds)

    def test_subspace_popularity_is_skewed(self, flight_routes):
        mix = WorkloadMix(flight_routes)
        rng = random.Random(1)
        subspaces = [
            request.params["subspace"]
            for request in (mix.generate(rng) for _ in range(3000))
            if "subspace" in request.params
        ]
        counts = sorted(
            (subspaces.count(s) for s in set(subspaces)), reverse=True
        )
        # zipf(1.1) over 7 subspaces: the hottest gets several times the
        # traffic of the coldest.
        assert counts[0] > 3 * counts[-1]

    def test_requests_are_valid_for_the_service(self, flight_routes):
        mix = WorkloadMix(flight_routes)
        rng = random.Random(2)
        for _ in range(200):
            request = mix.generate(rng)
            if "subspace" in request.params:
                # parses back to a non-empty mask
                assert flight_routes.parse_subspace(request.params["subspace"])
            if "label" in request.params:
                assert request.params["label"] in flight_routes.labels
            if "k" in request.params:
                assert 1 <= int(request.params["k"]) <= 5

    def test_churn_rows_stay_in_range(self, flight_routes):
        mix = WorkloadMix(flight_routes)
        rng = random.Random(3)
        lo = flight_routes.values.min(axis=0)
        hi = flight_routes.values.max(axis=0)
        row, label = mix.churn_row(rng, 7)
        assert label == "LT-7"
        assert all(lo[d] <= row[d] <= hi[d] for d in range(len(row)))


class TestPercentile:
    def test_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]  # 1..100
        assert percentile(samples, 0.50) == 50.0
        assert percentile(samples, 0.95) == 95.0
        assert percentile(samples, 0.99) == 99.0
        assert percentile(samples, 1.0) == 100.0
        assert percentile([7.0], 0.99) == 7.0

    def test_empty_and_validation(self):
        import math

        assert math.isnan(percentile([], 0.5))
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


def _record(kind="skyline", status=200, seconds=0.01, **kw) -> RequestRecord:
    kw.setdefault("service_seconds", seconds)
    return RequestRecord(kind=kind, status=status, seconds=seconds, **kw)


class TestCapacityModel:
    def test_fit_matches_formula(self):
        records = [
            _record(cached=True, service_seconds=0.001, seconds=0.001)
            for _ in range(50)
        ] + [
            _record(cached=False, service_seconds=0.009, seconds=0.009)
            for _ in range(50)
        ]
        model = fit_capacity(records, n_groups=2000)
        assert model is not None
        assert model.hit_ratio == 0.5
        assert model.t_hit_s == pytest.approx(0.001)
        assert model.t_miss_s == pytest.approx(0.009)
        # 1 / (0.5*1ms + 0.5*9ms) = 200 req/s per worker
        assert model.per_worker_rps == pytest.approx(200.0)
        assert model.sustainable_rps(8) == pytest.approx(1600.0)
        assert model.t_miss_per_1k_groups_s == pytest.approx(0.0045)

    def test_all_misses_collapses_to_single_class(self):
        records = [
            _record(cached=False, service_seconds=0.004, seconds=0.004)
            for _ in range(10)
        ]
        model = fit_capacity(records)
        assert model.hit_ratio == 0.0
        assert model.per_worker_rps == pytest.approx(250.0)

    def test_no_successes_gives_none(self):
        assert fit_capacity([]) is None
        assert fit_capacity([_record(status=503)]) is None


class TestOracle:
    def test_rebuilds_mutated_generations(self, flight_routes):
        oracle = _Oracle(flight_routes)
        oracle.register_base("routes@v000001")
        oracle.record_mutation(
            "routes@v000001+1", ("insert", [100.0, 5.0, 0.0], "CHEAP")
        )
        oracle.record_mutation("routes@v000001+2", ("delete", "CHEAP"))
        assert oracle.expected_skyline("routes@v000001+1", "price,stops") == [
            "CHEAP"
        ]
        # after the delete the original skyline is back
        assert oracle.expected_skyline("routes@v000001+2", "price,stops") == [
            "BUDGET-LHR",
            "DIRECT",
            "TK-YVR",
        ]
        assert oracle.knows("routes@v000001+2")
        assert not oracle.knows("routes@v000099")

    def test_out_of_order_ack_evicts_base(self, flight_routes):
        oracle = _Oracle(flight_routes)
        oracle.register_base("routes@v000001")
        # ack claims +5 but only one op was recorded: external mutator
        oracle.record_mutation(
            "routes@v000001+5", ("insert", [1.0, 1.0, 1.0], "X")
        )
        assert not oracle.knows("routes@v000001")

    def test_unknown_base_ignored(self, flight_routes):
        oracle = _Oracle(flight_routes)
        oracle.record_mutation("other@v000003+1", ("delete", "P1"))
        assert not oracle.knows("other@v000003")

    def test_read_inconsistency_detection(self, flight_routes):
        runner = _Runner(
            "http://unused.invalid", flight_routes, LoadtestConfig(), None
        )
        runner._note_skyline("v@1", "price", ("A", "B"))
        runner._note_skyline("v@1", "price", ("A", "B"))
        assert runner.read_inconsistencies == []
        runner._note_skyline("v@1", "price", ("A",))
        assert len(runner.read_inconsistencies) == 1
        assert runner.read_inconsistencies[0]["cube_version"] == "v@1"


class TestLedgerEntry:
    def _report(self, records):
        result = _fake_result(records)
        return summarize(result)

    def test_metrics_are_higher_is_worse(self):
        records = [
            _record(cached=True, seconds=0.002, service_seconds=0.001)
            for _ in range(80)
        ] + [_record(status=503, shed_reason="queue_full") for _ in range(20)]
        report = self._report(records)
        entry = report_entry(report, scale="smoke")
        assert entry.figure == "serve"
        assert entry.metrics["shed_rate"] == pytest.approx(0.2)
        # cache-*miss* ratio so that a worse cache raises the metric
        assert entry.metrics["cache_miss_ratio"] == pytest.approx(0.0)
        assert entry.metrics["error_rate"] == 0
        assert entry.metrics["consistency_violations"] == 0
        assert "skyline_p99_s" in entry.metrics
        assert entry.workload["slo_ok"] is True

    def test_entry_round_trips_through_ledger(self, tmp_path):
        report = self._report([_record() for _ in range(10)])
        path = tmp_path / "BENCH_serve.json"
        append_entry(path, report_entry(report))
        (loaded,) = load_entries(path)
        assert loaded.figure == "serve"
        assert loaded.metrics["consistency_violations"] == 0
        assert isinstance(loaded.metrics["consistency_violations"], int)


def _fake_result(records):
    """A LoadtestResult around canned records (no server involved)."""
    from repro.loadtest.runner import LoadtestResult
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.slo import SLOEngine, default_serving_slos

    reg = MetricsRegistry()
    for r in records:
        reg.histogram(f"serve.request.{r.kind}.seconds").observe(r.seconds)
        reg.counter("serve.shed" if r.shed else "serve.admitted").inc()
    engine = SLOEngine(
        default_serving_slos(kinds=("skyline",), availability_target=0.5),
        reg=reg,
    )
    return LoadtestResult(
        config=LoadtestConfig(duration_seconds=1.0, rate_rps=100.0),
        records=list(records),
        slo_report=engine.sample(),
        wall_seconds=1.0,
        scheduled=len(records),
        max_lag_seconds=0.0,
        consistency={"violations": [], "read_inconsistencies": []},
    )


class TestEndToEnd:
    def test_soak_run_with_churn_and_reload(self, served, flight_routes, routes_csv):
        url, _service = served
        config = LoadtestConfig(
            duration_seconds=1.5,
            rate_rps=80.0,
            seed=11,
            churn_interval=0.15,
            publish_interval=0.6,
            snapshot="loadtest",
        )
        result = run_loadtest(
            url, flight_routes, config, csv_text=routes_csv.read_text()
        )
        report = summarize(result)
        assert report.completed > 40
        assert report.error_rate == 0.0
        assert report.cache_hit_ratio > 0.0
        # churn actually happened and survived hot reloads
        assert result.churn["inserts"] >= 1
        assert result.churn["publishes"] >= 2  # initial + periodic
        assert result.consistency["churn_errors"] == []
        # the oracle verified real observations and found no violations
        assert result.consistency["verified"] > 0
        assert result.consistency["violations"] == []
        assert result.consistency["read_inconsistencies"] == []
        assert report.ok
        # capacity model fitted from live traffic
        assert report.capacity is not None
        assert report.capacity.per_worker_rps > 0
        # client-side slo gauges were exported into the private registry
        assert result.registry.gauge("slo.availability.met").value == 1.0

    def test_read_only_run_against_external_server(
        self, served, flight_routes, routes_csv
    ):
        url, service = served
        # Someone else published; the harness only reads.
        service.publish_csv("loadtest", routes_csv.read_text())
        config = LoadtestConfig(duration_seconds=0.8, rate_rps=60.0, seed=3)
        result = run_loadtest(url, flight_routes, config, csv_text=None)
        report = summarize(result)
        assert report.completed > 20
        assert report.error_rate == 0.0
        # no oracle ownership: observations audit as unverified, never as
        # violations
        assert result.consistency["verified"] == 0
        assert result.consistency["violations"] == []
        assert result.consistency["unverified_versions"]


class TestLoadtestCLI:
    def test_parser_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "loadtest",
                "--dataset",
                "d.csv",
                "--duration",
                "5",
                "--rate",
                "120",
                "--churn-interval",
                "0.5",
                "--fail-on-slo",
            ]
        )
        assert args.command == "loadtest"
        assert args.duration == 5.0
        assert args.rate == 120.0
        assert args.churn_interval == 0.5
        assert args.fail_on_slo

    def test_cli_self_hosted_run(self, tmp_path, routes_csv, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        report_path = tmp_path / "report.json"
        rc = main(
            [
                "loadtest",
                "--dataset",
                str(routes_csv),
                "--duration",
                "1",
                "--rate",
                "40",
                "--churn-interval",
                "0.3",
                "--report",
                str(report_path),
                "--ledger-dir",
                str(tmp_path),
            ]
        )
        assert rc == 0
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is True
        assert payload["completed"] > 10
        assert payload["capacity"]["per_worker_rps"] > 0
        (entry,) = load_entries(tmp_path / "BENCH_serve.json")
        assert "overall_p99_s" in entry.metrics

    def test_cli_fail_on_slo(self, tmp_path, routes_csv):
        from repro.cli import main

        # A threshold below every histogram bucket makes every request
        # "bad"; --fail-on-slo must turn that into a non-zero exit.
        rc = main(
            [
                "loadtest",
                "--dataset",
                str(routes_csv),
                "--duration",
                "0.5",
                "--rate",
                "30",
                "--slo-threshold-ms",
                "0.000001",
                "--fail-on-slo",
                "--no-ledger",
            ]
        )
        assert rc == 1


class TestRegressionGate:
    """The CI contract: bench diff --only '*_p99_s' trips on a p99 jump."""

    def _ledger(self, tmp_path, baseline_p99, candidate_p99):
        path = tmp_path / "BENCH_serve.json"
        for i, p99 in enumerate((baseline_p99, candidate_p99)):
            append_entry(
                path,
                LedgerEntry(
                    figure="serve",
                    scale="smoke",
                    created=1000.0 + i,
                    metrics={
                        "overall_p99_s": p99,
                        "skyline_p99_s": p99,
                        "error_rate": 0.0,
                        "shed_rate": 0.5,  # noisy companion, not gated
                        "consistency_violations": 0,
                    },
                ),
            )
        return path

    def test_injected_p99_regression_fails_gate(self, tmp_path, capsys):
        from repro.cli import main

        path = self._ledger(tmp_path, 0.010, 0.100)  # 10x p99 jump
        rc = main(
            [
                "bench",
                "diff",
                "--ledger",
                str(path),
                "--only",
                "*_p99_s",
                "--threshold",
                "3.0",
            ]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "shed_rate" not in out  # filtered out of the gate

    def test_steady_p99_passes_gate(self, tmp_path):
        from repro.cli import main

        path = self._ledger(tmp_path, 0.010, 0.012)
        rc = main(
            [
                "bench",
                "diff",
                "--ledger",
                str(path),
                "--only",
                "*_p99_s",
                "--threshold",
                "3.0",
            ]
        )
        assert rc == 0

    def test_consistency_violations_gate_from_zero(self, tmp_path):
        """A zero baseline with any violation trips (infinite ratio)."""
        from repro.cli import main

        path = tmp_path / "BENCH_serve.json"
        for violations in (0, 1):
            append_entry(
                path,
                LedgerEntry(
                    figure="serve",
                    scale="smoke",
                    created=1000.0 + violations,
                    metrics={"consistency_violations": violations},
                ),
            )
        rc = main(
            [
                "bench",
                "diff",
                "--ledger",
                str(path),
                "--only",
                "consistency_violations",
                "--threshold",
                "3.0",
            ]
        )
        assert rc == 1


class TestOpenLoopBehavior:
    def test_arrivals_do_not_wait_for_completions(self, flight_routes):
        """A stalled server must not thin the arrival schedule."""
        import http.server
        import time as _time

        hold = threading.Event()

        class SlowHandler(http.server.BaseHTTPRequestHandler):
            def do_GET(self):
                hold.wait(timeout=5)
                body = b'{"result": [], "cached": false, "cube_version": ""}'
                self.send_response(200)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), SlowHandler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            url = f"http://127.0.0.1:{server.server_address[1]}"
            config = LoadtestConfig(
                duration_seconds=0.6, rate_rps=50.0, seed=5, workers=64
            )
            t0 = _time.perf_counter()
            runner_result = [None]

            def run():
                runner_result[0] = run_loadtest(url, flight_routes, config)

            load_thread = threading.Thread(target=run)
            load_thread.start()
            _time.sleep(0.8)
            hold.set()
            load_thread.join(timeout=30)
            result = runner_result[0]
            assert result is not None
            # ~30 arrivals were scheduled although the server stalled the
            # whole run: open loop, not closed loop.
            assert result.scheduled >= 15
            # the stall is visible in the open-loop latency
            report = summarize(result)
            stalled = [r for r in result.records if r.seconds > 0.15]
            assert stalled, "stall did not surface in open-loop latency"
            assert report.overall_p99_s > 0.15
            assert _time.perf_counter() - t0 < 25
        finally:
            server.shutdown()
            server.server_close()
