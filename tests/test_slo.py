"""Tests for the SLO engine (repro.obs.slo).

The engine is exercised against a *private* MetricsRegistry with a fake
clock, so every window boundary and burn-rate figure is deterministic:
drive the underlying histogram/counters by hand, advance the clock,
sample, and assert the accounting.
"""

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.promexport import render_prometheus
from repro.obs.slo import (
    SLOEngine,
    SLOSampler,
    availability_slo,
    default_serving_slos,
    format_window,
    latency_slo,
)


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def reg():
    return MetricsRegistry()


def make_engine(reg, slos, windows=(60.0, 300.0)):
    clock = FakeClock()
    return SLOEngine(slos, windows=windows, reg=reg, clock=clock), clock


class TestSLODefinition:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            latency_slo("x", "h", 0.1).__class__(
                name="x", kind="nope", target=0.9
            )
        with pytest.raises(ValueError, match="target"):
            latency_slo("x", "h", 0.1, target=1.0)
        with pytest.raises(ValueError, match="threshold"):
            latency_slo("x", "h", 0.0)
        with pytest.raises(ValueError, match="total_counters"):
            availability_slo("x", (), ("bad",))

    def test_effective_threshold_snaps_down(self, reg):
        reg.histogram("lat.seconds", bounds=(0.01, 0.1, 1.0))
        slo = latency_slo("lat", "lat.seconds", threshold_seconds=0.5)
        assert slo.effective_threshold(reg) == 0.1
        exact = latency_slo("lat2", "lat.seconds", threshold_seconds=0.1)
        assert exact.effective_threshold(reg) == 0.1
        below = latency_slo("lat3", "lat.seconds", threshold_seconds=0.001)
        assert below.effective_threshold(reg) == 0.0

    def test_default_serving_slos_shape(self):
        slos = default_serving_slos()
        names = [s.name for s in slos]
        assert "latency.skyline" in names
        assert "availability" in names
        availability = slos[-1]
        assert availability.total_counters == ("serve.admitted", "serve.shed")
        assert availability.bad_counters == ("serve.shed",)

    def test_engine_validation(self, reg):
        slo = latency_slo("x", "h", 0.1)
        with pytest.raises(ValueError, match="at least one"):
            SLOEngine([], reg=reg)
        with pytest.raises(ValueError, match="duplicate"):
            SLOEngine([slo, slo], reg=reg)
        with pytest.raises(ValueError, match="windows"):
            SLOEngine([slo], windows=(), reg=reg)


class TestLatencyAccounting:
    def test_compliance_from_buckets(self, reg):
        hist = reg.histogram("lat.seconds", bounds=(0.01, 0.1, 1.0))
        slo = latency_slo("lat", "lat.seconds", 0.1, target=0.9)
        engine, _ = make_engine(reg, [slo])
        for _ in range(95):
            hist.observe(0.005)  # good
        for _ in range(5):
            hist.observe(0.5)  # bad (over 0.1)
        report = engine.sample()
        (status,) = report.statuses
        assert status.good == 95 and status.total == 100
        assert status.compliance == pytest.approx(0.95)
        assert status.met is True
        # budget: 10% of 100 events = 10 bad allowed; 5 consumed.
        assert status.budget_consumed == pytest.approx(0.5)
        assert status.budget_remaining == pytest.approx(0.5)

    def test_no_traffic_is_compliant(self, reg):
        slo = latency_slo("lat", "lat.seconds", 0.1)
        engine, _ = make_engine(reg, [slo])
        report = engine.sample()
        (status,) = report.statuses
        assert status.total == 0
        assert status.compliance == 1.0
        assert status.met is True
        assert report.ok

    def test_violation_and_blown_budget(self, reg):
        hist = reg.histogram("lat.seconds", bounds=(0.01, 0.1, 1.0))
        slo = latency_slo("lat", "lat.seconds", 0.1, target=0.99)
        engine, _ = make_engine(reg, [slo])
        for _ in range(90):
            hist.observe(0.005)
        for _ in range(10):
            hist.observe(0.5)
        report = engine.sample()
        (status,) = report.statuses
        assert status.met is False
        assert not report.ok
        assert status.budget_remaining < 0  # blown


class TestWindowsAndBurnRate:
    def test_burn_rate_over_window(self, reg):
        hist = reg.histogram("lat.seconds", bounds=(0.01, 0.1, 1.0))
        slo = latency_slo("lat", "lat.seconds", 0.1, target=0.99)
        engine, clock = make_engine(reg, [slo], windows=(60.0,))
        for _ in range(100):
            hist.observe(0.005)
        engine.sample()  # baseline: 100 good
        clock.advance(60.0)
        # Next minute: 90 good, 10 bad -> bad fraction 0.1, budget 0.01.
        for _ in range(90):
            hist.observe(0.005)
        for _ in range(10):
            hist.observe(0.5)
        report = engine.sample()
        (status,) = report.statuses
        (window,) = status.windows
        assert window.total == 100
        assert window.good == 90
        assert window.burn_rate == pytest.approx(10.0)
        # Lifetime compliance still counts the clean first minute.
        assert status.compliance == pytest.approx(0.95)

    def test_window_baseline_prefers_oldest_inside_horizon(self, reg):
        hist = reg.histogram("lat.seconds", bounds=(0.01, 0.1))
        slo = latency_slo("lat", "lat.seconds", 0.01, target=0.5)
        engine, clock = make_engine(reg, [slo], windows=(60.0,))
        hist.observe(0.005)
        engine.sample()  # t=1000, total 1
        clock.advance(30.0)
        hist.observe(0.005)
        engine.sample()  # t=1030, total 2
        clock.advance(30.0)
        hist.observe(0.005)
        report = engine.sample()  # t=1060; baseline should be t=1000
        (window,) = report.statuses[0].windows
        assert window.total == 2
        assert window.span_seconds == pytest.approx(60.0)

    def test_history_pruned_beyond_longest_window(self, reg):
        slo = latency_slo("lat", "lat.seconds", 0.1)
        engine, clock = make_engine(reg, [slo], windows=(60.0,))
        for _ in range(10):
            engine.sample()
            clock.advance(30.0)
        # At most: one baseline at/past the horizon + in-window samples.
        assert len(engine._history) <= 4

    def test_format_window(self):
        assert format_window(60.0) == "1m"
        assert format_window(300.0) == "5m"
        assert format_window(3600.0) == "1h"
        assert format_window(45.0) == "45s"


class TestAvailabilityAccounting:
    def test_shed_rate(self, reg):
        admitted = reg.counter("serve.admitted")
        shed = reg.counter("serve.shed")
        slo = availability_slo(
            "avail", ("serve.admitted", "serve.shed"), ("serve.shed",),
            target=0.9,
        )
        engine, _ = make_engine(reg, [slo])
        admitted.inc(95)
        shed.inc(5)
        (status,) = engine.sample().statuses
        assert status.total == 100
        assert status.good == 95
        assert status.met is True
        assert status.budget_consumed == pytest.approx(0.5)


class TestExportAndReport:
    def test_gauges_exported_to_prometheus(self, reg):
        hist = reg.histogram("lat.seconds", bounds=(0.01, 0.1))
        slo = latency_slo("lat", "lat.seconds", 0.1, target=0.99)
        engine, _ = make_engine(reg, [slo], windows=(60.0,))
        hist.observe(0.005)
        engine.sample()
        assert reg.gauge("slo.lat.compliance").value == 1.0
        assert reg.gauge("slo.lat.met").value == 1.0
        assert reg.gauge("slo.lat.target").value == 0.99
        text = render_prometheus(reg)
        assert "repro_slo_lat_compliance 1" in text
        assert "repro_slo_lat_burn_rate_1m 0" in text

    def test_report_round_trip_and_render(self, reg):
        hist = reg.histogram("lat.seconds", bounds=(0.01, 0.1))
        slo = latency_slo("lat", "lat.seconds", 0.1, target=0.99)
        engine, _ = make_engine(reg, [slo])
        hist.observe(0.005)
        hist.observe(5.0)
        report = engine.sample()
        payload = report.to_dict()
        assert payload["ok"] is False
        (entry,) = payload["slos"]
        assert entry["name"] == "lat"
        assert entry["good"] == 1 and entry["total"] == 2
        assert not math.isnan(entry["compliance"])
        text = report.render()
        assert "VIOLATED" in text
        assert "error budget" in text

    def test_report_without_sampling(self, reg):
        slo = latency_slo("lat", "lat.seconds", 0.1)
        engine, _ = make_engine(reg, [slo])
        report = engine.report()
        assert report.statuses[0].total == 0
        assert engine._history == []  # report() records nothing


class TestSampler:
    def test_sampler_samples_on_start_and_stop(self, reg):
        hist = reg.histogram("lat.seconds", bounds=(0.01, 0.1))
        slo = latency_slo("lat", "lat.seconds", 0.1)
        engine = SLOEngine([slo], windows=(60.0,), reg=reg)
        hist.observe(0.005)
        with SLOSampler(engine, interval=30.0):
            assert reg.gauge("slo.lat.events_total").value == 1.0
            hist.observe(0.005)
        # stop() samples once more, picking up the second observation.
        assert reg.gauge("slo.lat.events_total").value == 2.0

    def test_sampler_validation(self, reg):
        engine = SLOEngine(
            [latency_slo("lat", "lat.seconds", 0.1)], reg=reg
        )
        with pytest.raises(ValueError, match="interval"):
            SLOSampler(engine, interval=0)
