"""Tests for the label-based QueryEngine front end."""

import pytest

from repro.cube import QueryEngine


@pytest.fixture
def engine(flight_routes):
    return QueryEngine.build(flight_routes)


class TestQ1:
    def test_skyline_by_names(self, engine):
        assert engine.skyline("price,traveltime") == [
            "BUDGET-LHR", "DIRECT", "TK-YVR",
        ]

    def test_single_dimension(self, engine):
        assert engine.skyline("price") == ["BUDGET-LHR", "MULTIHOP"]

    def test_unknown_dimension(self, engine):
        with pytest.raises(ValueError, match="unknown dimension"):
            engine.skyline("price,comfort")


class TestQ2:
    def test_where_wins(self, engine):
        got = engine.where_wins("TK-YVR")
        assert got == [
            "price,traveltime",
            "price,stops",
            "price,traveltime,stops",
        ]

    def test_wins_in(self, engine):
        assert engine.wins_in("DIRECT", "traveltime")
        assert not engine.wins_in("SLOW-EXPENSIVE", "price,traveltime,stops")

    def test_signature_of(self, engine):
        sigs = engine.signature_of("DIRECT")
        assert len(sigs) == 1
        assert "DIRECT" in sigs[0]
        assert "traveltime" in sigs[0]

    def test_unknown_label(self, engine):
        with pytest.raises(ValueError, match="unknown object label"):
            engine.where_wins("CONCORDE")


class TestQ3:
    def test_drill_down_keys(self, engine):
        got = engine.drill_down("price")
        assert set(got) == {"price,traveltime", "price,stops"}

    def test_roll_up(self, engine):
        got = engine.roll_up("price,stops")
        assert set(got) == {"price", "stops"}
        assert got["price"] == ["BUDGET-LHR", "MULTIHOP"]

    def test_build_with_skyey(self, flight_routes):
        engine = QueryEngine.build(flight_routes, algorithm="skyey")
        assert engine.skyline("price") == ["BUDGET-LHR", "MULTIHOP"]
