"""Tests for the benchmark harness and figure runners (smoke scale)."""

import pytest

from repro.bench import SCALES, run_figure
from repro.bench.harness import BudgetedRunner, time_call
from repro.bench.reporting import FigureResult, render_markdown, render_table


class TestHarness:
    def test_time_call(self):
        result, seconds = time_call(lambda: 42)
        assert result == 42
        assert seconds >= 0

    def test_budgeted_runner_skips_after_blow(self):
        runner = BudgetedRunner(budget_seconds=0.0)
        first = runner.run(1, "x", lambda: sum(range(1000)))
        assert first.seconds is not None
        assert first.result == sum(range(1000))
        second = runner.run(2, "x", lambda: 1)
        assert second.seconds is None
        assert second.display == "skipped"

    def test_budgeted_runner_within_budget(self):
        runner = BudgetedRunner(budget_seconds=100.0)
        for x in range(3):
            assert runner.run(x, "x", lambda: x).seconds is not None

    def test_scales_defined(self):
        assert set(SCALES) == {"smoke", "default", "paper"}
        assert SCALES["paper"].nba_players == 17_265
        assert SCALES["paper"].synthetic_tuples == 100_000
        assert SCALES["paper"].size_sweep[-1] == 500_000


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["a", "long_header"], [[1, 2.5], [None, "x"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "long_header" in lines[0]
        assert set(lines[1]) <= {"-", " "}  # separator row
        assert "-" in lines[3]  # None renders as -

    def test_render_markdown(self):
        md = render_markdown(["a", "b"], [[1, 2]])
        assert md.splitlines()[0] == "| a | b |"
        assert "| 1 | 2 |" in md

    def test_figure_result_save(self, tmp_path):
        result = FigureResult(
            figure="Figure 99",
            title="test",
            headers=["x"],
            rows=[[1]],
            notes=["hello"],
        )
        path = result.save(tmp_path)
        assert path.name == "figure_99.txt"
        content = path.read_text()
        assert "Figure 99" in content
        assert "note: hello" in content
        assert "Figure 99" in result.to_markdown()
        import json

        payload = json.loads((tmp_path / "figure_99.json").read_text())
        assert payload["rows"] == [[1]]
        assert payload["notes"] == ["hello"]


class TestFigureRunners:
    def test_unknown_figure(self):
        with pytest.raises(ValueError, match="unknown figure"):
            run_figure("fig99")

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="unknown scale"):
            run_figure("fig8", scale="galactic")

    def test_fig8_smoke_shape(self):
        result = run_figure("fig8", scale="smoke")
        assert result.headers == [
            "d",
            "stellar_s",
            "stellar_columnar_s",
            "skyey_s",
            "skyey/stellar",
            "stellar/columnar",
        ]
        assert [row[0] for row in result.rows] == list(range(1, 7))
        # Neither Stellar engine is ever skipped at smoke scale
        assert all(row[1] is not None for row in result.rows)
        assert all(row[2] is not None for row in result.rows)

    def test_fig9_smoke_counts_monotone(self):
        result = run_figure("fig9", scale="smoke")
        objects = [row[2] for row in result.rows]
        groups = [row[1] for row in result.rows]
        assert all(isinstance(x, int) for x in objects)
        # subspace skyline objects grow with d; groups stay <= objects
        assert objects == sorted(objects)
        assert all(g <= o for g, o in zip(groups, objects))

    def test_fig10_smoke_distributions(self):
        result = run_figure("fig10", scale="smoke")
        dists = {row[0] for row in result.rows}
        assert dists == {"correlated", "equal", "anticorrelated"}

    def test_fig11_smoke(self):
        result = run_figure("fig11", scale="smoke")
        assert result.headers == ["distribution", "d", "stellar_s", "skyey_s"]
        assert len(result.rows) > 6

    def test_fig12_smoke(self):
        result = run_figure("fig12", scale="smoke")
        sizes = {row[2] for row in result.rows}
        assert sizes == {200, 400}
