"""Tests for CSV persistence."""

import numpy as np
import pytest

from repro.core.types import Dataset, Direction
from repro.data import load_csv, save_csv


class TestRoundTrip:
    def test_full_roundtrip(self, tmp_path, flight_routes):
        path = tmp_path / "routes.csv"
        save_csv(flight_routes, path)
        loaded = load_csv(path)
        assert loaded.names == flight_routes.names
        assert loaded.directions == flight_routes.directions
        assert loaded.labels == flight_routes.labels
        assert np.array_equal(loaded.values, flight_routes.values)

    def test_max_directions_preserved(self, tmp_path):
        ds = Dataset.from_rows(
            [[1, 2], [3, 4]], directions=("min", "max")
        )
        path = tmp_path / "d.csv"
        save_csv(ds, path)
        loaded = load_csv(path)
        assert loaded.directions == (Direction.MIN, Direction.MAX)
        assert np.array_equal(loaded.minimized, ds.minimized)

    def test_empty_dataset_roundtrip(self, tmp_path):
        ds = Dataset.from_rows([], names=("A", "B"))
        path = tmp_path / "empty.csv"
        save_csv(ds, path)
        loaded = load_csv(path)
        assert loaded.n_objects == 0
        assert loaded.names == ("A", "B")

    def test_float_precision_survives(self, tmp_path):
        ds = Dataset.from_rows([[0.1234, 1e-9], [2.5, 3.75]])
        path = tmp_path / "f.csv"
        save_csv(ds, path)
        assert np.array_equal(load_csv(path).values, ds.values)


class TestHandAuthored:
    def test_direction_defaults_to_min(self, tmp_path):
        path = tmp_path / "hand.csv"
        path.write_text("label,price,rating:max\nx,10,4\ny,20,5\n")
        ds = load_csv(path)
        assert ds.directions == (Direction.MIN, Direction.MAX)
        assert ds.names == ("price", "rating")
        assert ds.labels == ("x", "y")

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("label,a:min\nx,1\n\ny,2\n")
        assert load_csv(path).n_objects == 2


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "nothing.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty file"):
            load_csv(path)

    def test_missing_label_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("name,a:min\nx,1\n")
        with pytest.raises(ValueError, match="first header cell"):
            load_csv(path)

    def test_ragged_row(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("label,a:min,b:min\nx,1\n")
        with pytest.raises(ValueError, match="expected 3 cells"):
            load_csv(path)

    def test_non_numeric_cell(self, tmp_path):
        path = tmp_path / "nan.csv"
        path.write_text("label,a:min\nx,abc\n")
        with pytest.raises(ValueError, match="nan.csv:2"):
            load_csv(path)

    def test_bad_direction(self, tmp_path):
        path = tmp_path / "dir.csv"
        path.write_text("label,a:upwards\nx,1\n")
        with pytest.raises(ValueError, match="'min' or 'max'"):
            load_csv(path)
